package rolap

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/record"
)

// replicaCubes returns each live replica's underlying cube, by index.
func replicaCubes(rs *ReplicaSet) []*Cube {
	var cubes []*Cube
	for _, r := range rs.group.Stats().Replicas {
		if node, ok := r.Node.(*replicaNode); ok && node != nil {
			cubes = append(cubes, node.cube)
		} else {
			cubes = append(cubes, nil)
		}
	}
	return cubes
}

func waitReplicas(t *testing.T, rs *ReplicaSet) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rs.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
}

// TestReplicaSetMatchesLeader is the tier's correctness oracle: after
// the replicas catch up, every replica must hold the leader's exact
// views and per-view version counters, and reads through the replica
// set must equal reads on the leader.
func TestReplicaSetMatchesLeader(t *testing.T) {
	rows, meas := randomFacts(700, 211)
	base := 500
	leader := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})
	rs, err := leader.NewReplicaSet(ReplicaOptions{Replicas: 3, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	for lo := base; lo < len(rows); lo += 50 {
		if _, err := leader.Ingest(rows[lo:lo+50], meas[lo:lo+50]); err != nil {
			t.Fatal(err)
		}
	}
	waitReplicas(t, rs)

	st := rs.Stats()
	if st.LeaderSeq != 4 {
		t.Fatalf("LeaderSeq = %d, want 4", st.LeaderSeq)
	}
	if st.SnapshotSeq == 0 {
		t.Fatalf("snapshot never refreshed: %+v", st)
	}
	leaderVers := leader.engine.Versions()
	for i, rc := range replicaCubes(rs) {
		if rc == nil {
			t.Fatalf("replica %d has no node: %+v", i, st.Replicas[i])
		}
		checkCubesEqual(t, rc, leader)
		repVers := rc.engine.Versions()
		for v, ver := range leaderVers {
			if repVers[v] != ver {
				t.Fatalf("replica %d: view %v version %d, leader %d", i, v, repVers[v], ver)
			}
		}
	}

	// Reads through the set equal reads on the leader.
	ctx := context.Background()
	want, err := leader.GroupBy([]string{"month"}, map[string]uint32{"channel": 1})
	if err != nil {
		t.Fatal(err)
	}
	got, qm, err := rs.GroupBy(ctx, []string{"month"}, map[string]uint32{"channel": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equal(got.rows, want.rows) {
		t.Fatal("replica GroupBy differs from leader")
	}
	if qm.CacheHit {
		t.Fatal("first replica read reported a cache hit")
	}
	// The identical repeat routes to the same home replica (cache
	// affinity) and hits its result cache.
	_, qm2, err := rs.GroupBy(ctx, []string{"month"}, map[string]uint32{"channel": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !qm2.CacheHit {
		t.Fatal("affinity-routed repeat missed the replica's cache")
	}

	wantA, err := leader.Aggregate([]string{"store"}, []uint32{7})
	if err != nil {
		t.Fatal(err)
	}
	gotA, _, err := rs.Aggregate(ctx, []string{"store"}, []uint32{7})
	if err != nil {
		t.Fatal(err)
	}
	if gotA != wantA {
		t.Fatalf("replica aggregate %d, leader %d", gotA, wantA)
	}
	if st := rs.Stats(); st.Routed < 3 {
		t.Fatalf("routing counters not kept: %+v", st)
	}
}

// TestReplicaSetServesDuringIngest checks atomic batch visibility under
// continuous leader ingest: every grand total read through the set must
// equal the total at some committed batch boundary — never a torn
// mid-batch mixture — while the leader never stops ingesting.
func TestReplicaSetServesDuringIngest(t *testing.T) {
	rows, meas := randomFacts(600, 223)
	base := 300
	leader := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
	rs, err := leader.NewReplicaSet(ReplicaOptions{Replicas: 2, MaxLag: 8, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Totals at every committed boundary (measures are non-negative, so
	// they are distinct prefix sums).
	allowed := map[int64]bool{}
	var total int64
	for _, m := range meas[:base] {
		total += m
	}
	allowed[total] = true
	boundaries := []int64{total}
	for lo := base; lo < len(rows); lo += 50 {
		for _, m := range meas[lo : lo+50] {
			total += m
		}
		allowed[total] = true
		boundaries = append(boundaries, total)
	}

	done := make(chan error, 1)
	go func() {
		for lo := base; lo < len(rows); lo += 50 {
			if _, err := leader.Ingest(rows[lo:lo+50], meas[lo:lo+50]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	ctx := context.Background()
	for reads := 0; ; reads++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			waitReplicas(t, rs)
			got, _, err := rs.Aggregate(ctx, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != boundaries[len(boundaries)-1] {
				t.Fatalf("caught-up total %d, want %d", got, boundaries[len(boundaries)-1])
			}
			for i, rc := range replicaCubes(rs) {
				if rc == nil {
					t.Fatalf("replica %d lost its node", i)
				}
				checkCubesEqual(t, rc, leader)
			}
			return
		default:
		}
		got, _, err := rs.Aggregate(ctx, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !allowed[got] {
			t.Fatalf("read %d saw total %d — not any committed boundary %v", reads, got, boundaries)
		}
	}
}

// TestReplicaCrashCatchUpDeterministic: a seeded fault plan crashes a
// replica at an exact batch sequence; it re-bootstraps from the latest
// snapshot, replays the delta log, and converges to the leader's exact
// state — identically on every run.
func TestReplicaCrashCatchUpDeterministic(t *testing.T) {
	type outcome struct {
		stats  string
		totals []int64
	}
	run := func() outcome {
		rows, meas := randomFacts(600, 227)
		base := 400
		leader := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
		rs, err := leader.NewReplicaSet(ReplicaOptions{
			Replicas:      2,
			SnapshotEvery: 3,
			Faults:        &FaultPlan{Crashes: []Crash{{Processor: 1, Superstep: 2}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		for lo := base; lo < len(rows); lo += 40 {
			if _, err := leader.Ingest(rows[lo:lo+40], meas[lo:lo+40]); err != nil {
				t.Fatal(err)
			}
		}
		waitReplicas(t, rs)

		st := rs.Stats()
		var o outcome
		for i, r := range st.Replicas {
			o.stats += fmt.Sprintf("%d:%s applied=%d boot=%d crash=%d;", i, r.State, r.Applied, r.Bootstraps, r.Crashes)
		}
		for _, rc := range replicaCubes(rs) {
			checkCubesEqual(t, rc, leader)
			tot, err := rc.Aggregate(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			o.totals = append(o.totals, tot)
		}
		return o
	}
	a, b := run(), run()
	if a.stats != b.stats {
		t.Fatalf("replica outcomes differ across identical runs:\n%s\n%s", a.stats, b.stats)
	}
	want := "0:live applied=5 boot=1 crash=0;1:live applied=5 boot=2 crash=1;"
	if a.stats != want {
		t.Fatalf("crash/catch-up outcome = %q, want %q", a.stats, want)
	}
	for i := range a.totals {
		if a.totals[i] != b.totals[i] {
			t.Fatalf("replica %d totals differ across runs: %d vs %d", i, a.totals[i], b.totals[i])
		}
	}
}

// TestReplicaSetLifecycleAndValidation covers option validation, manual
// crash recovery, and detaching from the leader.
func TestReplicaSetLifecycleAndValidation(t *testing.T) {
	rows, meas := randomFacts(400, 229)
	leader := buildFromFacts(t, rows[:300], meas[:300], Options{Processors: 2})
	if _, err := leader.NewReplicaSet(ReplicaOptions{Replicas: -1}); err == nil {
		t.Fatal("negative replica count accepted")
	}
	if _, err := leader.NewReplicaSet(ReplicaOptions{
		Replicas: 2,
		Faults:   &FaultPlan{Crashes: []Crash{{Processor: 7, Superstep: 1}}},
	}); err == nil {
		t.Fatal("fault plan addressing replica 7 of 2 accepted")
	}

	rs, err := leader.NewReplicaSet(ReplicaOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.CrashReplica(5); err == nil {
		t.Fatal("out-of-range crash index accepted")
	}
	// Manual crash: the replica re-bootstraps and reconverges.
	if err := rs.CrashReplica(0); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Ingest(rows[300:], meas[300:]); err != nil {
		t.Fatal(err)
	}
	waitReplicas(t, rs)
	st := rs.Stats()
	if st.Replicas[0].Crashes != 1 || st.Replicas[0].Bootstraps != 2 || st.Replicas[0].State != "live" {
		t.Fatalf("after manual crash: %+v", st.Replicas[0])
	}
	for _, rc := range replicaCubes(rs) {
		checkCubesEqual(t, rc, leader)
	}

	// Close detaches the commit stream; the leader keeps ingesting.
	rs.Close()
	rs.Close() // idempotent
	if _, err := leader.Ingest(rows[:10], meas[:10]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := rs.Aggregate(ctx, nil, nil); err == nil {
		t.Fatal("read served after Close")
	}
}
