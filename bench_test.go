package rolap

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (IPDPS'03 §4, Figures 5-11 plus the §1/§4.1 headline
// claims). Each benchmark runs the corresponding experiment sweep at a
// reduced data scale (shapes, not absolute numbers, are the
// reproduction target; see EXPERIMENTS.md) and reports the key
// simulated-time metrics the paper plots. Run the full-size sweeps
// with cmd/experiments -scale paper.

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

// benchScale keeps each figure sweep to a few seconds of wall time.
func benchScale() experiments.Scale {
	return experiments.Scale{
		N1M: 15_000, N2M: 30_000, N10M: 60_000,
		Procs: []int{1, 4, 16},
		MaxP:  16,
		Seed:  1,
	}
}

func lastPoint(pts []experiments.SpeedupPoint) experiments.SpeedupPoint {
	return pts[len(pts)-1]
}

// BenchmarkFig5_Speedup regenerates Figure 5: full-cube construction
// time and relative speedup vs processor count for two data sizes.
func BenchmarkFig5_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(benchScale())
		res.Print(io.Discard)
		small, large := res.Series[0], res.Series[1]
		b.ReportMetric(lastPoint(small.Points).Speedup, "speedup-n1")
		b.ReportMetric(lastPoint(large.Points).Speedup, "speedup-n2")
		b.ReportMetric(small.SeqSeconds, "seqsim-sec")
	}
}

// BenchmarkFig6_PartialCube regenerates Figure 6: partial-cube time
// and speedup for 25/50/75/100% selected views.
func BenchmarkFig6_PartialCube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6(benchScale())
		res.Print(io.Discard)
		b.ReportMetric(lastPoint(res.Series[0].Points).Speedup, "speedup-25pct")
		b.ReportMetric(lastPoint(res.Series[3].Points).Speedup, "speedup-100pct")
	}
}

// BenchmarkFig7_ScheduleTrees regenerates Figure 7: global vs local
// schedule trees.
func BenchmarkFig7_ScheduleTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(benchScale())
		res.Print(io.Discard)
		b.ReportMetric(lastPoint(res.Global).Seconds, "global-sim-sec")
		b.ReportMetric(lastPoint(res.Local).Seconds, "local-sim-sec")
	}
}

// BenchmarkFig8_Skew regenerates Figure 8: time and merge-phase
// communication volume vs Zipf skew.
func BenchmarkFig8_Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.N1M = 30_000 // skew effects need data reduction headroom
		res := experiments.Fig8(sc)
		res.Print(io.Discard)
		b.ReportMetric(res.Points[0].Seconds, "alpha0-sim-sec")
		b.ReportMetric(res.Points[3].Seconds, "alpha3-sim-sec")
		b.ReportMetric(res.Points[1].MergeMB, "alpha1-merge-MB")
	}
}

// BenchmarkFig9_Cardinality regenerates Figure 9: cardinality mixes
// A-D including the difficult skewed-leading-dimension input.
func BenchmarkFig9_Cardinality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Procs = []int{1, 16}
		res := experiments.Fig9(sc)
		res.Print(io.Discard)
		b.ReportMetric(lastPoint(res.Series[0].Points).Seconds, "mixA-sim-sec")
		b.ReportMetric(lastPoint(res.Series[2].Points).Seconds, "mixC-sim-sec")
		b.ReportMetric(lastPoint(res.Series[3].Points).Speedup, "mixD-speedup")
	}
}

// BenchmarkFig10_Dimensionality regenerates Figure 10: time vs
// dimensionality (d = 6..10).
func BenchmarkFig10_Dimensionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(benchScale())
		res.Print(io.Discard)
		b.ReportMetric(res.Points[0].Seconds, "d6-sim-sec")
		b.ReportMetric(res.Points[len(res.Points)-1].Seconds, "d10-sim-sec")
	}
}

// BenchmarkFig11_Balance regenerates Figure 11: balance-threshold
// tradeoffs (gamma = 3/5/7%).
func BenchmarkFig11_Balance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(benchScale())
		res.Print(io.Discard)
		b.ReportMetric(lastPoint(res.Series[0].Points).Seconds, "gamma3-sim-sec")
		b.ReportMetric(lastPoint(res.Series[2].Points).Seconds, "gamma7-sim-sec")
	}
}

// BenchmarkHeadline regenerates the paper's headline table: input size
// vs cube size and end-to-end build time at the full machine size.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Headline(benchScale())
		res.Print(io.Discard)
		b.ReportMetric(res.Entries[0].Seconds, "n2M-sim-sec")
		b.ReportMetric(res.Entries[0].Expansion, "n2M-expansion")
		b.ReportMetric(res.Entries[1].Seconds, "n10M-sim-sec")
	}
}

// BenchmarkPublicAPI measures the end-to-end public-API path (load,
// build, query) that examples/quickstart exercises.
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in, err := NewInput(Schema{Dimensions: []Dimension{
			{Name: "a", Cardinality: 32},
			{Name: "b", Cardinality: 16},
			{Name: "c", Cardinality: 8},
			{Name: "d", Cardinality: 4},
		}})
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 20000; r++ {
			vals := []uint32{uint32(r % 32), uint32(r % 16), uint32(r % 8), uint32(r % 4)}
			if err := in.AddRow(vals, 1); err != nil {
				b.Fatal(err)
			}
		}
		cube, err := Build(in, Options{Processors: 8})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cube.Aggregate([]string{"a", "c"}, []uint32{1, 2}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cube.Metrics().SimSeconds, "sim-sec")
	}
}
