package rolap

import (
	"bytes"
	"context"
	"sort"
	"testing"
	"time"
)

// holisticFacts builds deterministic facts whose measures are values in
// [0, 100): below the quantile sketch's exact-code range and with
// per-group distinct counts far under the exact threshold, so both
// sketches answer exactly and the oracle comparison is equality.
func holisticFacts(n int, seed uint64) ([][]uint32, []int64) {
	cards := []int{12, 40, 25, 3}
	x := seed | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	rows := make([][]uint32, n)
	meas := make([]int64, n)
	for i := 0; i < n; i++ {
		r := make([]uint32, len(cards))
		for j, c := range cards {
			r[j] = uint32(next() % uint64(c))
		}
		rows[i] = r
		meas[i] = int64(next() % 100)
	}
	return rows, meas
}

func buildHolisticCube(t *testing.T, rows [][]uint32, meas []int64, agg Aggregate) *Cube {
	t.Helper()
	in, err := NewInput(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if err := in.AddRow(rows[i], meas[i]); err != nil {
			t.Fatal(err)
		}
	}
	cube, err := Build(in, Options{Processors: 3, Aggregate: agg})
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// holisticGroups group-bys the fact list over dims (with equality
// filters), returning each group's measure multiset.
func holisticGroups(rows [][]uint32, meas []int64, dims []string, filters map[string]uint32) map[string][]int64 {
	names := []string{"month", "store", "product", "channel"}
	col := map[string]int{}
	for j, nm := range names {
		col[nm] = j
	}
	out := map[string][]int64{}
	for i, r := range rows {
		ok := true
		for nm, v := range filters {
			if r[col[nm]] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		key := ""
		for _, d := range dims {
			key += string(rune(r[col[d]])) + ","
		}
		out[key] = append(out[key], meas[i])
	}
	return out
}

func distinctOf(vals []int64) int64 {
	set := map[int64]bool{}
	for _, v := range vals {
		set[v] = true
	}
	return int64(len(set))
}

func quantileOf(vals []int64, q float64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

func wantMeasure(agg Aggregate, vals []int64, pct float64) int64 {
	if agg == CountDistinct {
		return distinctOf(vals)
	}
	return quantileOf(vals, pct)
}

// checkHolisticGroupBy compares a GroupBy result against the fact-list
// oracle at percentile pct (ignored for CountDistinct).
func checkHolisticGroupBy(t *testing.T, cube *Cube, rows [][]uint32, meas []int64, agg Aggregate, dims []string, filters map[string]uint32, pct float64) {
	t.Helper()
	var vw *View
	var err error
	if pct == 0.5 {
		vw, err = cube.GroupBy(dims, filters)
	} else {
		vw, err = cube.GroupByPercentile(dims, filters, pct)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !vw.Estimated {
		t.Fatalf("holistic GroupBy %v result not marked Estimated", dims)
	}
	oracle := holisticGroups(rows, meas, dims, filters)
	if vw.Len() != len(oracle) {
		t.Fatalf("GroupBy %v: %d groups, oracle %d", dims, vw.Len(), len(oracle))
	}
	for i := 0; i < vw.Len(); i++ {
		key, got := vw.Row(i)
		k := ""
		for _, v := range key {
			k += string(rune(v)) + ","
		}
		vals, ok := oracle[k]
		if !ok {
			t.Fatalf("GroupBy %v: group %v not in oracle", dims, key)
		}
		if want := wantMeasure(agg, vals, pct); got != want {
			t.Fatalf("GroupBy %v group %v: got %d, want %d (%d values)", dims, key, got, want, len(vals))
		}
	}
}

func TestHolisticCubeEndToEnd(t *testing.T) {
	for _, agg := range []Aggregate{CountDistinct, Quantile} {
		rows, meas := holisticFacts(900, 41)
		cube := buildHolisticCube(t, rows, meas, agg)
		if m := cube.Metrics(); m.SketchBytes <= 0 {
			t.Fatalf("%v cube SketchBytes = %d, want > 0", agg, m.SketchBytes)
		}

		// Materialized view reads serve estimates and say so.
		vw, err := cube.View([]string{"channel"})
		if err != nil {
			t.Fatal(err)
		}
		if !vw.Estimated {
			t.Fatalf("%v View not marked Estimated", agg)
		}
		oracle := holisticGroups(rows, meas, []string{"channel"}, nil)
		for i := 0; i < vw.Len(); i++ {
			key, got := vw.Row(i)
			vals := oracle[string(rune(key[0]))+","]
			if want := wantMeasure(agg, vals, 0.5); got != want {
				t.Fatalf("%v View channel=%d: got %d, want %d", agg, key[0], got, want)
			}
		}

		// Distributed GroupBy, with and without filters.
		checkHolisticGroupBy(t, cube, rows, meas, agg, []string{"store"}, nil, 0.5)
		checkHolisticGroupBy(t, cube, rows, meas, agg, []string{"month", "channel"}, map[string]uint32{"store": 3}, 0.5)

		// Point query (exact view and superset-scan fallback).
		for _, dims := range [][]string{{"channel"}, {"month", "store", "product", "channel"}} {
			g := holisticGroups(rows, meas, dims, nil)
			for k := range g {
				key := make([]uint32, 0, len(dims))
				for _, r := range k {
					if r != ',' {
						key = append(key, uint32(r))
					}
				}
				got, err := cube.Aggregate(dims, key)
				if err != nil {
					t.Fatal(err)
				}
				if want := wantMeasure(agg, g[k], 0.5); got != want {
					t.Fatalf("%v Aggregate %v %v: got %d, want %d", agg, dims, key, got, want)
				}
				break
			}
		}

		// Range aggregate pools the matching groups' sketches.
		got, err := cube.RangeAggregate([]string{"month"}, []uint32{2}, []uint32{6})
		if err != nil {
			t.Fatal(err)
		}
		var pooled []int64
		for i, r := range rows {
			if r[0] >= 2 && r[0] <= 6 {
				pooled = append(pooled, meas[i])
			}
		}
		if want := wantMeasure(agg, pooled, 0.5); got != want {
			t.Fatalf("%v RangeAggregate month in [2,6]: got %d, want %d", agg, got, want)
		}

		// Incremental ingest extends the sketches.
		brows, bmeas := holisticFacts(250, 977)
		if _, err := cube.Ingest(brows, bmeas); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, brows...)
		meas = append(meas, bmeas...)
		checkHolisticGroupBy(t, cube, rows, meas, agg, []string{"store"}, nil, 0.5)

		// Save / load round-trips the sketch store; the loaded cube
		// serves identically and keeps ingesting.
		var buf bytes.Buffer
		if err := cube.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadCube(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.opts.Aggregate != agg {
			t.Fatalf("loaded aggregate %v, want %v", loaded.opts.Aggregate, agg)
		}
		checkHolisticGroupBy(t, loaded, rows, meas, agg, []string{"store"}, nil, 0.5)
		checkHolisticGroupBy(t, loaded, rows, meas, agg, []string{"month", "channel"}, map[string]uint32{"store": 3}, 0.5)
		crows, cmeas := holisticFacts(120, 5557)
		if _, err := loaded.Ingest(crows, cmeas); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, crows...)
		meas = append(meas, cmeas...)
		checkHolisticGroupBy(t, loaded, rows, meas, agg, []string{"channel"}, nil, 0.5)
	}
}

func TestGroupByPercentile(t *testing.T) {
	rows, meas := holisticFacts(800, 99)
	cube := buildHolisticCube(t, rows, meas, Quantile)
	for _, pct := range []float64{0, 0.25, 0.9, 1} {
		checkHolisticGroupBy(t, cube, rows, meas, Quantile, []string{"channel"}, nil, pct)
	}
	if _, err := cube.GroupByPercentile([]string{"channel"}, nil, 1.5); err == nil {
		t.Fatal("percentile rank outside [0,1] must be rejected")
	}
	dcube := buildHolisticCube(t, rows, meas, CountDistinct)
	if _, err := dcube.GroupByPercentile([]string{"channel"}, nil, 0.5); err == nil {
		t.Fatal("GroupByPercentile on a non-Quantile cube must be rejected")
	}
}

func TestHolisticBuildValidation(t *testing.T) {
	in, err := NewInput(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AddRow([]uint32{1, 2, 3, 0}, -7); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(in, Options{Processors: 2, Aggregate: CountDistinct}); err == nil {
		t.Fatal("negative measures must be rejected on a holistic build")
	}
	in2, _ := NewInput(testSchema())
	_ = in2.AddRow([]uint32{1, 2, 3, 0}, 5)
	if _, err := Build(in2, Options{Processors: 2, Aggregate: Quantile, MinSupport: 3}); err == nil {
		t.Fatal("iceberg thresholds must be rejected on a holistic build")
	}
	cube := buildHolisticCube(t, [][]uint32{{1, 2, 3, 0}}, []int64{5}, Quantile)
	if _, err := cube.Ingest([][]uint32{{1, 2, 3, 1}}, []int64{-4}); err == nil {
		t.Fatal("negative measures must be rejected on holistic ingest")
	}
}

// TestHolisticReplicaSet ships a quantile cube through the replica
// tier: snapshot bootstrap carries the sketch blobs, delta batches
// re-aggregate deterministically, and replica reads match the leader.
func TestHolisticReplicaSet(t *testing.T) {
	rows, meas := holisticFacts(700, 313)
	base := 500
	leader := buildHolisticCube(t, rows[:base], meas[:base], Quantile)
	rs, err := leader.NewReplicaSet(ReplicaOptions{Replicas: 2, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	for lo := base; lo < len(rows); lo += 100 {
		hi := lo + 100
		if hi > len(rows) {
			hi = len(rows)
		}
		if _, err := leader.Ingest(rows[lo:hi], meas[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	waitReplicas(t, rs)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	want, err := leader.GroupBy([]string{"channel"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rs.GroupBy(ctx, []string{"channel"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Estimated {
		t.Fatal("replica GroupBy result not marked Estimated")
	}
	if got.Len() != want.Len() {
		t.Fatalf("replica GroupBy %d groups, leader %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		wk, wm := want.Row(i)
		gk, gm := got.Row(i)
		if wm != gm || wk[0] != gk[0] {
			t.Fatalf("replica row %d (%v, %d) != leader (%v, %d)", i, gk, gm, wk, wm)
		}
	}
	oracle := holisticGroups(rows, meas, []string{"channel"}, nil)
	for i := 0; i < want.Len(); i++ {
		k, m := want.Row(i)
		if w := quantileOf(oracle[string(rune(k[0]))+","], 0.5); m != w {
			t.Fatalf("leader channel=%d median %d, oracle %d", k[0], m, w)
		}
	}
}
