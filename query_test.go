package rolap

import (
	"math/rand"
	"testing"
)

func TestGroupByWithFilters(t *testing.T) {
	in, oracle := loadRandom(t, 1500, 21)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Group revenue by month, restricted to channel 1: answered from
	// the (month, channel) view (or a superset), re-aggregated.
	vw, err := cube.GroupBy([]string{"month"}, map[string]uint32{"channel": 1})
	if err != nil {
		t.Fatal(err)
	}
	if vw.Attributes[0] != "month" {
		t.Fatalf("attributes = %v", vw.Attributes)
	}
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		want := oracle([]string{"month", "channel"}, []uint32{key[0], 1})
		if m != want {
			t.Fatalf("month %d filtered = %d, want %d", key[0], m, want)
		}
	}
	// No filters: GroupBy equals the materialized view's totals.
	plain, err := cube.GroupBy([]string{"store"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plain.Len(); i++ {
		key, m := plain.Row(i)
		if want := oracle([]string{"store"}, key); m != want {
			t.Fatalf("store %d = %d, want %d", key[0], m, want)
		}
	}
}

func TestGroupByOnPartialCube(t *testing.T) {
	in, oracle := loadRandom(t, 1000, 22)
	cube, err := Build(in, Options{
		Processors:    2,
		SelectedViews: [][]string{{"store", "product", "channel"}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// (product) with a channel filter must be answered from the
	// 3-dimensional view.
	vw, err := cube.GroupBy([]string{"product"}, map[string]uint32{"channel": 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		if want := oracle([]string{"product", "channel"}, []uint32{key[0], 0}); m != want {
			t.Fatalf("product %d = %d, want %d", key[0], m, want)
		}
	}
	// A dimension outside the materialized views fails loudly.
	if _, err := cube.GroupBy([]string{"month"}, nil); err == nil {
		t.Fatal("uncovered query did not error")
	}
}

func TestGroupByValidation(t *testing.T) {
	in, _ := loadRandom(t, 200, 23)
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.GroupBy([]string{"bogus"}, nil); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	// A filter on a grouped dimension is a valid restriction ("group by
	// store where store = 1"), and both serving paths must agree on it.
	vw, err := cube.GroupBy([]string{"store"}, map[string]uint32{"store": 1})
	if err != nil {
		t.Fatalf("filter on grouped dimension rejected: %v", err)
	}
	for i := 0; i < vw.Len(); i++ {
		if key, _ := vw.Row(i); key[0] != 1 {
			t.Fatalf("row %d has store %d, want only 1", i, key[0])
		}
	}
	gathered, err := cube.gatherGroupBy([]string{"store"}, map[string]uint32{"store": 1}, defaultPercentile)
	if err != nil {
		t.Fatalf("gather path rejected grouped-dim filter: %v", err)
	}
	if gathered.Len() != vw.Len() {
		t.Fatalf("paths disagree: gather %d rows, distributed %d", gathered.Len(), vw.Len())
	}
}

func TestRangeAggregate(t *testing.T) {
	in, oracle := loadRandom(t, 1500, 24)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Sum of stores 10..19 across months 3..5.
	got, err := cube.RangeAggregate([]string{"store", "month"}, []uint32{10, 3}, []uint32{19, 5})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for s := uint32(10); s <= 19; s++ {
		for m := uint32(3); m <= 5; m++ {
			want += oracle([]string{"store", "month"}, []uint32{s, m})
		}
	}
	if got != want {
		t.Fatalf("range sum = %d, want %d", got, want)
	}
	// Degenerate single-cell range equals the point query.
	got, _ = cube.RangeAggregate([]string{"store"}, []uint32{7}, []uint32{7})
	if want := oracle([]string{"store"}, []uint32{7}); got != want {
		t.Fatalf("single-cell range = %d, want %d", got, want)
	}
	// Empty intersection returns 0.
	got, _ = cube.RangeAggregate([]string{"store"}, []uint32{39}, []uint32{39})
	_ = got
	if _, err := cube.RangeAggregate([]string{"store"}, []uint32{5}, []uint32{4}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := cube.RangeAggregate([]string{"store"}, []uint32{5}, []uint32{4, 6}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRangeAggregateMaxCube(t *testing.T) {
	in, _ := NewInput(testSchema())
	rng := rand.New(rand.NewSource(25))
	truth := int64(-1 << 62)
	for i := 0; i < 800; i++ {
		vals := []uint32{uint32(rng.Intn(12)), uint32(rng.Intn(40)), uint32(rng.Intn(25)), uint32(rng.Intn(3))}
		m := int64(rng.Intn(10000))
		if err := in.AddRow(vals, m); err != nil {
			t.Fatal(err)
		}
		if vals[1] < 20 && m > truth {
			truth = m
		}
	}
	cube, err := Build(in, Options{Processors: 2, Aggregate: Max})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cube.RangeAggregate([]string{"store"}, []uint32{0}, []uint32{19})
	if err != nil || got != truth {
		t.Fatalf("max over stores 0..19 = %d (%v), want %d", got, err, truth)
	}
}

func TestRollUpDrillDownConsistency(t *testing.T) {
	in, _ := loadRandom(t, 1200, 26)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rolling up the (store,month) view over month must equal the
	// (store) view.
	detail, err := cube.View([]string{"store", "month"})
	if err != nil {
		t.Fatal(err)
	}
	rollup := map[uint32]int64{}
	storeCol := 0
	if detail.Attributes[0] != "store" {
		storeCol = 1
	}
	for i := 0; i < detail.Len(); i++ {
		key, m := detail.Row(i)
		rollup[key[storeCol]] += m
	}
	stores, err := cube.View([]string{"store"})
	if err != nil {
		t.Fatal(err)
	}
	if stores.Len() != len(rollup) {
		t.Fatalf("rollup groups %d != store view %d", len(rollup), stores.Len())
	}
	for i := 0; i < stores.Len(); i++ {
		key, m := stores.Row(i)
		if rollup[key[0]] != m {
			t.Fatalf("store %d rollup %d != view %d", key[0], rollup[key[0]], m)
		}
	}
}
