package rolap

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/lattice"
	"repro/internal/queryengine"
	"repro/internal/record"
)

// GroupBy computes an ad-hoc OLAP query against the cube: group by the
// given dimensions, restricted by equality filters on other
// dimensions, aggregating with the cube's operator. The query is
// answered from the smallest materialized view containing all
// referenced dimensions — the standard ROLAP rewrite. Roll-up and
// drill-down are GroupBy with fewer or more dimensions.
//
// On a cluster-backed cube the query executes where the data lives:
// every processor filters, projects, and partially aggregates its own
// slice of the source view, and the partial aggregates are merged —
// no view is gathered onto one rank. Cubes loaded from a snapshot fall
// back to the gather-and-scan path. Both paths return identical
// results.
//
// The result is a computed View (not materialized on the cluster):
// Attributes follow the order of dims, rows are sorted.
//
// On holistic cubes (CountDistinct, Quantile) the measures are served
// estimates and the View's Estimated flag is set; Quantile cubes
// report the median — use GroupByPercentile for another rank.
func (c *Cube) GroupBy(dims []string, filters map[string]uint32) (*View, error) {
	return c.groupByAt(dims, filters, defaultPercentile)
}

// GroupByPercentile is GroupBy serving the p-th percentile (rank pct
// in [0, 1]) of each group's value distribution instead of the
// median. Only valid on Quantile cubes.
func (c *Cube) GroupByPercentile(dims []string, filters map[string]uint32, pct float64) (*View, error) {
	if c.opts.Aggregate != Quantile {
		return nil, fmt.Errorf("rolap: GroupByPercentile requires a Quantile cube (have %v)", c.opts.Aggregate)
	}
	if pct < 0 || pct > 1 {
		return nil, fmt.Errorf("rolap: percentile rank %v outside [0, 1]", pct)
	}
	return c.groupByAt(dims, filters, pct)
}

func (c *Cube) groupByAt(dims []string, filters map[string]uint32, pct float64) (*View, error) {
	if c.engine == nil {
		return c.gatherGroupBy(dims, filters, pct)
	}
	// The advisor can retire a plan's source view between planning and
	// execution; a stale plan is rejected (never silently misread) and
	// simply replanned against the current view set.
	for attempt := 0; ; attempt++ {
		q, err := c.planQuery(dims, filters, pct)
		if err != nil {
			if errors.Is(err, queryengine.ErrStalePlan) && attempt < staleReplanLimit {
				continue
			}
			return nil, err
		}
		rows, _, err := c.engine.Execute(q)
		if err != nil {
			if errors.Is(err, queryengine.ErrStalePlan) && attempt < staleReplanLimit {
				continue
			}
			return nil, err
		}
		return &View{
			Attributes: append([]string(nil), dims...),
			Estimated:  c.op.Holistic(),
			order:      queryOrder(c, dims),
			rows:       rows,
		}, nil
	}
}

// staleReplanLimit bounds replan retries after ErrStalePlan. Each
// retry replans against the then-current view set; the set always
// contains a cover for any answerable query (retirement requires a
// surviving superset), so one retry normally suffices.
const staleReplanLimit = 4

// planQuery validates a GroupBy request and plans its distributed
// execution: dimension names are resolved to internal indices, filters
// become per-dimension equality bounds, and the engine picks the
// source view and column layout.
func (c *Cube) planQuery(dims []string, filters map[string]uint32, pct float64) (queryengine.Query, error) {
	if _, err := c.in.viewOf(dims); err != nil {
		return queryengine.Query{}, err
	}
	group := make([]int, len(dims))
	for k, name := range dims {
		one, err := c.in.viewOf([]string{name})
		if err != nil {
			return queryengine.Query{}, err
		}
		group[k] = one.Dims()[0]
	}
	bounds := make(map[int][2]uint32, len(filters))
	for name, val := range filters {
		one, err := c.in.viewOf([]string{name})
		if err != nil {
			return queryengine.Query{}, err
		}
		bounds[one.Dims()[0]] = [2]uint32{val, val}
	}
	q, err := c.engine.NewQuery(group, bounds)
	if err != nil {
		return queryengine.Query{}, fmt.Errorf("rolap: %w", err)
	}
	if c.op.Holistic() {
		q.Percentile = pct
	}
	return q, nil
}

// gatherGroupBy answers GroupBy by gathering the source view onto one
// rank and scanning it — the original serving path, kept for cubes
// loaded from snapshots (no cluster) and as the oracle the distributed
// path is tested against.
func (c *Cube) gatherGroupBy(dims []string, filters map[string]uint32, pct float64) (*View, error) {
	if _, err := c.in.viewOf(dims); err != nil {
		return nil, err
	}
	// A filter may restrict a grouped dimension (the query is "group by
	// store where store = 3"), so filter dims must be deduplicated
	// against the group dims before forming the needed view — naively
	// appending both lists makes viewOf reject the repeat.
	grouped := make(map[string]bool, len(dims))
	for _, name := range dims {
		grouped[name] = true
	}
	filterDims := make([]string, 0, len(filters))
	for name := range filters {
		if !grouped[name] {
			filterDims = append(filterDims, name)
		}
	}
	need, err := c.in.viewOf(append(append([]string{}, dims...), filterDims...))
	if err != nil {
		return nil, err // repeated or unknown dimension
	}

	src, err := c.smallestSuperset(need)
	if err != nil {
		return nil, err
	}
	vw, ok := c.gather(src)
	if !ok {
		return nil, fmt.Errorf("rolap: view retired while gathering; retry")
	}

	// Column bookkeeping in the source view's layout.
	srcOrder := vw.order
	filterCol := map[int]uint32{} // column -> required value
	for name, val := range filters {
		one, err := c.in.viewOf([]string{name})
		if err != nil {
			return nil, err
		}
		dim := one.Dims()[0]
		for col, d := range srcOrder {
			if d == dim {
				filterCol[col] = val
			}
		}
	}
	outCols := make([]int, len(dims)) // result column -> source column
	for k, name := range dims {
		one, err := c.in.viewOf([]string{name})
		if err != nil {
			return nil, err
		}
		dim := one.Dims()[0]
		for col, d := range srcOrder {
			if d == dim {
				outCols[k] = col
			}
		}
	}

	// Filter + project + re-aggregate.
	proj := record.New(len(dims), 0)
	key := make([]uint32, len(dims))
	for i := 0; i < vw.rows.Len(); i++ {
		match := true
		for col, val := range filterCol {
			if vw.rows.Dim(i, col) != val {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for k, col := range outCols {
			key[k] = vw.rows.Dim(i, col)
		}
		proj.Append(key, vw.rows.Meas(i))
	}
	agg, release := c.scratchAgg()
	defer release()
	out := record.SortAggregateAgg(proj, agg)
	if agg.State != nil {
		for i := 0; i < out.Len(); i++ {
			out.SetMeas(i, c.resolveMeasure(out.Meas(i), pct))
		}
	}
	return &View{
		Attributes: append([]string(nil), dims...),
		Estimated:  c.op.Holistic(),
		order:      queryOrder(c, dims),
		rows:       out,
	}, nil
}

// queryOrder builds the internal order matching the user's dims
// sequence (for Decode-style helpers on computed views).
func queryOrder(c *Cube, dims []string) lattice.Order {
	o := make(lattice.Order, len(dims))
	for k, name := range dims {
		v, _ := c.in.viewOf([]string{name})
		o[k] = v.Dims()[0]
	}
	return o
}

// smallestSuperset returns the materialized view with the fewest rows
// containing all of need's dimensions. Ties on row count break to the
// smaller ViewID, so the choice is deterministic regardless of map
// iteration order (and matches the engine's planner).
func (c *Cube) smallestSuperset(need lattice.ViewID) (lattice.ViewID, error) {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	best := lattice.ViewID(0)
	bestRows := int64(-1)
	for v := range c.orders {
		if !need.SubsetOf(v) {
			continue
		}
		rows := c.viewRowCount(v)
		if bestRows == -1 || rows < bestRows || (rows == bestRows && v < best) {
			best, bestRows = v, rows
		}
	}
	if bestRows == -1 {
		return 0, fmt.Errorf("rolap: no materialized view covers the queried dimensions")
	}
	return best, nil
}

// RangeAggregate aggregates all groups of the named view whose
// attribute values fall within [lo[k], hi[k]] for every dimension
// (inclusive on both ends). It is answered from the exact materialized
// view when available, else the smallest superset. Only meaningful for
// Sum cubes when ranges span groups; for Min/Max cubes it returns the
// min/max over the range.
//
// On a cluster-backed cube the range is evaluated in place: each
// processor combines its slice's matching rows (binary-searching to
// the run when the range covers the sort-order prefix) and the partial
// aggregates are merged.
func (c *Cube) RangeAggregate(dims []string, lo, hi []uint32) (int64, error) {
	if len(dims) != len(lo) || len(dims) != len(hi) {
		return 0, fmt.Errorf("rolap: dims/lo/hi length mismatch")
	}
	for k := range lo {
		if lo[k] > hi[k] {
			return 0, fmt.Errorf("rolap: empty range on %q", dims[k])
		}
	}
	if c.engine == nil {
		return c.gatherRangeAggregate(dims, lo, hi)
	}
	for attempt := 0; ; attempt++ {
		q, err := c.planRange(dims, lo, hi)
		if err != nil {
			if errors.Is(err, queryengine.ErrStalePlan) && attempt < staleReplanLimit {
				continue
			}
			return 0, err
		}
		rows, _, err := c.engine.Execute(q)
		if err != nil {
			if errors.Is(err, queryengine.ErrStalePlan) && attempt < staleReplanLimit {
				continue
			}
			return 0, err
		}
		if rows.Len() == 0 {
			return 0, nil
		}
		return rows.Meas(0), nil
	}
}

// planRange validates a RangeAggregate request and plans its
// distributed execution: all matching rows collapse into one
// zero-dimension group.
func (c *Cube) planRange(dims []string, lo, hi []uint32) (queryengine.Query, error) {
	if _, err := c.in.viewOf(dims); err != nil {
		return queryengine.Query{}, err
	}
	bounds := make(map[int][2]uint32, len(dims))
	for k, name := range dims {
		one, err := c.in.viewOf([]string{name})
		if err != nil {
			return queryengine.Query{}, err
		}
		bounds[one.Dims()[0]] = [2]uint32{lo[k], hi[k]}
	}
	q, err := c.engine.NewQuery(nil, bounds)
	if err != nil {
		return queryengine.Query{}, fmt.Errorf("rolap: %w", err)
	}
	if c.op.Holistic() {
		q.Percentile = defaultPercentile
	}
	return q, nil
}

// gatherRangeAggregate is the gather-and-scan fallback for snapshot
// cubes, and the oracle for the distributed path.
func (c *Cube) gatherRangeAggregate(dims []string, lo, hi []uint32) (int64, error) {
	want, err := c.in.viewOf(dims)
	if err != nil {
		return 0, err
	}
	src, err := c.smallestSuperset(want)
	if err != nil {
		return 0, err
	}
	vw, ok := c.gather(src)
	if !ok {
		return 0, fmt.Errorf("rolap: view retired while gathering; retry")
	}
	srcOrder := vw.order
	// Map each queried dim to its source column and bounds.
	type bound struct {
		col    int
		lo, hi uint32
	}
	bounds := make([]bound, len(dims))
	for k, name := range dims {
		one, err := c.in.viewOf([]string{name})
		if err != nil {
			return 0, err
		}
		dim := one.Dims()[0]
		for col, d := range srcOrder {
			if d == dim {
				bounds[k] = bound{col: col, lo: lo[k], hi: hi[k]}
			}
		}
	}
	agg, release := c.scratchAgg()
	defer release()
	var acc int64
	first := true
	for i := 0; i < vw.rows.Len(); i++ {
		ok := true
		for _, b := range bounds {
			v := vw.rows.Dim(i, b.col)
			if v < b.lo || v > b.hi {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if first {
			acc = vw.rows.Meas(i)
			first = false
		} else {
			acc = agg.Combine(acc, vw.rows.Meas(i))
		}
	}
	if first {
		return 0, nil
	}
	return c.resolveMeasure(agg.Seal(acc), defaultPercentile), nil
}

// sourceViewNames renders a ViewID as its sorted user dimension names
// (the form QueryMetrics reports).
func (c *Cube) sourceViewNames(v lattice.ViewID) []string {
	names := c.in.namesOf(lattice.Canonical(v))
	sort.Strings(names)
	return names
}
