package rolap

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/estimate"
	"repro/internal/ingest"
	"repro/internal/lattice"
	"repro/internal/queryengine"
	"repro/internal/record"
)

// AdvisorOptions configures a materialization advisor.
type AdvisorOptions struct {
	// MaxViews caps the materialized set size (0 = no cap).
	MaxViews int
	// StorageBudgetBytes caps total estimated view storage (0 = no
	// cap); live views count at their actual size.
	StorageBudgetBytes int64
	// DecayFactor multiplies the demand window each Step before new
	// traffic is folded in (default 0.5), so old traffic ages out.
	DecayFactor float64
	// MinFallbacks is the least decayed fallback traffic a target view
	// needs before materialization is considered (default 4).
	MinFallbacks float64
	// ColdSourceQueries is the most decayed traffic a view may serve
	// and still be retired (default 0.25).
	ColdSourceQueries float64
	// MaterializePerStep / RetirePerStep bound one Step's actions
	// (defaults 2 and 1).
	MaterializePerStep int
	RetirePerStep      int
	// CostWeight scales one-time build cost against recurring
	// per-window scan savings (default 0.25).
	CostWeight float64
	// Seed fixes the score tie-break hash, making decisions
	// reproducible for a fixed traffic transcript.
	Seed int64
	// Interval is Run's step period (default 250ms).
	Interval time.Duration
}

func (o AdvisorOptions) withDefaults() AdvisorOptions {
	if o.DecayFactor == 0 {
		o.DecayFactor = 0.5
	}
	if o.MinFallbacks == 0 {
		o.MinFallbacks = 4
	}
	if o.ColdSourceQueries == 0 {
		o.ColdSourceQueries = 0.25
	}
	if o.MaterializePerStep == 0 {
		o.MaterializePerStep = 2
	}
	if o.RetirePerStep == 0 {
		o.RetirePerStep = 1
	}
	if o.CostWeight == 0 {
		o.CostWeight = 0.25
	}
	if o.Interval == 0 {
		o.Interval = 250 * time.Millisecond
	}
	return o
}

// Recommendation is one advised (and, from Step, executed) action.
type Recommendation struct {
	// Action is "materialize" or "retire".
	Action string
	// View names the view's dimensions, sorted.
	View []string
	// From names the smallest covering view: the build source for a
	// materialization, the view absorbing the traffic for a retirement.
	From []string
	// Score is the decision's net benefit (row-scan units per demand
	// window for materialize; storage bytes reclaimed for retire).
	Score float64
	// EstRows is the estimated (materialize) or actual (retire) global
	// row count of View.
	EstRows int64
}

// AdvisorStats are cumulative counters over an advisor's lifetime.
type AdvisorStats struct {
	// Steps counts Step calls; Materialized and Retired count executed
	// actions.
	Steps        int64
	Materialized int64
	Retired      int64
	// CurrentViews is the materialized set size after the last step,
	// StorageBytes its total estimated storage.
	CurrentViews int
	StorageBytes int64
	// BuildSimSeconds is total simulated machine time spent building
	// views online; BuildBytesMoved the redistribution volume.
	BuildSimSeconds float64
	BuildBytesMoved int64
	// LastStep holds the most recent step's executed recommendations.
	LastStep []Recommendation
}

// Advisor closes the loop from serving traffic back into
// materialization: it mines the engine's per-view demand counters
// into a decayed window, scores unmaterialized fallback targets and
// cold views with a benefit/cost model, and executes the winning
// recommendations online — new views built from their smallest
// materialized ancestor through the incremental machinery (no
// rebuild, version counters and cache/index invalidation exactly as
// an ingest batch), cold views retired behind the engine's drain
// barrier so in-flight queries finish first. Decisions are
// deterministic for a fixed seed and traffic transcript. An Advisor
// is safe for concurrent use with servers and ingest.
type Advisor struct {
	c     *Cube
	opts  AdvisorOptions
	sizer estimate.Sizer

	mu      sync.Mutex // serializes steps
	window  map[lattice.ViewID]advisor.Demand
	lastRaw map[lattice.ViewID]queryengine.ViewDemand
	stats   AdvisorStats
}

// NewAdvisor returns a materialization advisor over the cube. Only
// cluster-backed cubes can adapt; snapshot-loaded cubes have no
// machine to build on. Iceberg cubes are rejected for the same reason
// they cannot ingest: pruned groups make online re-aggregation wrong.
func (c *Cube) NewAdvisor(opts AdvisorOptions) (*Advisor, error) {
	if c.engine == nil {
		return nil, fmt.Errorf("rolap: cube has no cluster (loaded from snapshot); advisor needs the machine")
	}
	if c.opts.MinSupport > 0 {
		return nil, fmt.Errorf("rolap: iceberg cubes cannot be adapted online (pruned groups are unrecoverable)")
	}
	opts = opts.withDefaults()
	if opts.DecayFactor < 0 || opts.DecayFactor >= 1 {
		return nil, fmt.Errorf("rolap: decay factor %v out of range [0,1)", opts.DecayFactor)
	}
	// Cardenas estimates need the fact count and per-dimension
	// cardinalities in internal order.
	d := len(c.in.schema.Dimensions)
	cards := make([]int, d)
	for i := 0; i < d; i++ {
		cards[i] = c.in.schema.Dimensions[c.in.perm[i]].Cardinality
	}
	c.metMu.RLock()
	n := int64(c.in.table.Len()) + c.metrics.IngestedRows
	c.metMu.RUnlock()
	return &Advisor{
		c:       c,
		opts:    opts,
		sizer:   estimate.NewCardenas(n, cards),
		window:  map[lattice.ViewID]advisor.Demand{},
		lastRaw: map[lattice.ViewID]queryengine.ViewDemand{},
	}, nil
}

// Plan refreshes the demand window and returns what Step would do,
// without executing anything. Like Step it advances the decayed
// window, so interleaving Plan and Step changes the transcript.
func (a *Advisor) Plan() []Recommendation {
	a.mu.Lock()
	defer a.mu.Unlock()
	recs, _ := a.planLocked()
	out := make([]Recommendation, 0, len(recs))
	for _, r := range recs {
		out = append(out, a.publicRec(r))
	}
	return out
}

// planLocked advances the demand window from the engine's counters
// and scores the current state. Caller holds a.mu.
func (a *Advisor) planLocked() ([]advisor.Recommendation, map[lattice.ViewID]int64) {
	c := a.c
	raw := c.engine.DemandSnapshot()
	delta := make(map[lattice.ViewID]advisor.Demand, len(raw))
	for v, d := range raw {
		last := a.lastRaw[v]
		delta[v] = advisor.Demand{
			Hits:          float64(d.Hits - last.Hits),
			Fallbacks:     float64(d.Fallbacks - last.Fallbacks),
			FallbackRows:  float64(d.FallbackRows - last.FallbackRows),
			SourceQueries: float64(d.SourceQueries - last.SourceQueries),
		}
	}
	a.lastRaw = raw
	advisor.Decay(a.window, a.opts.DecayFactor, delta)

	materialized := map[lattice.ViewID]int64{}
	for _, v := range c.engine.Views() {
		materialized[v] = c.engine.Rows(v)
	}
	cfg := advisor.Config{
		D:                  len(c.in.schema.Dimensions),
		MaxViews:           a.opts.MaxViews,
		StorageBudgetBytes: a.opts.StorageBudgetBytes,
		MinFallbacks:       a.opts.MinFallbacks,
		ColdSourceQueries:  a.opts.ColdSourceQueries,
		MaterializePerStep: a.opts.MaterializePerStep,
		RetirePerStep:      a.opts.RetirePerStep,
		CostWeight:         a.opts.CostWeight,
		Seed:               a.opts.Seed,
	}
	return advisor.Recommend(cfg, a.window, materialized, a.sizer), materialized
}

// Step runs one advise cycle: refresh the demand window, score, and
// execute the recommendations online. It returns the executed
// actions. Materializations and retirements serialize with Ingest
// (same lock) and drain in-flight queries (the engine's maintenance
// barrier); concurrent queries see either the pre- or post-action
// view set and replan transparently if their planned view retired.
func (a *Advisor) Step() ([]Recommendation, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	recs, _ := a.planLocked()

	c := a.c
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	var out []Recommendation
	for _, r := range recs {
		switch r.Action {
		case advisor.Materialize:
			res, err := c.materializeView(r.View)
			if err != nil {
				a.finishStep(out)
				return out, err
			}
			a.stats.Materialized++
			a.stats.BuildSimSeconds += res.SimSeconds
			a.stats.BuildBytesMoved += res.BytesMoved
			pr := a.publicRec(r)
			pr.EstRows = res.Rows // report the actual built size
			out = append(out, pr)
		case advisor.Retire:
			retired, err := c.retireView(r.View)
			if err != nil {
				a.finishStep(out)
				return out, err
			}
			if retired {
				a.stats.Retired++
				out = append(out, a.publicRec(r))
			}
		}
	}
	a.finishStep(out)
	return out, nil
}

// finishStep updates the advisor's per-step bookkeeping. Caller holds
// a.mu and c.ingMu.
func (a *Advisor) finishStep(out []Recommendation) {
	a.stats.Steps++
	a.stats.LastStep = out
	a.stats.CurrentViews = len(a.c.views)
	var bytes int64
	for _, v := range a.c.views {
		bytes += a.c.viewRowCount(v) * int64(record.RowBytes(v.Count()))
	}
	a.stats.StorageBytes = bytes
}

// Run steps the advisor on its Interval until ctx is cancelled,
// returning the first execution error (nil on cancellation).
func (a *Advisor) Run(ctx context.Context) error {
	t := time.NewTicker(a.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			if _, err := a.Step(); err != nil {
				return err
			}
		}
	}
}

// Stats returns the advisor's cumulative counters.
func (a *Advisor) Stats() AdvisorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.LastStep = append([]Recommendation(nil), a.stats.LastStep...)
	return st
}

func (a *Advisor) publicRec(r advisor.Recommendation) Recommendation {
	return Recommendation{
		Action:  r.Action.String(),
		View:    a.c.sourceViewNames(r.View),
		From:    a.c.sourceViewNames(r.From),
		Score:   r.Score,
		EstRows: r.EstRows,
	}
}

// materializeView builds view v online from its smallest materialized
// ancestor and registers it for planning, ingest maintenance, and
// persistence, exactly as a build-time view: version counter bumped
// (stale cache entries miss), prefix indexes dropped, the partition's
// retained schedule tree invalidated so future ingest batches derive
// a schedule that includes the new view. Caller holds ingMu.
func (c *Cube) materializeView(v lattice.ViewID) (ingest.MaterializeResult, error) {
	if _, ok := c.engine.Order(v); ok {
		return ingest.MaterializeResult{}, nil // lost a race; already live
	}
	src, err := c.engine.PickSource(v)
	if err != nil {
		return ingest.MaterializeResult{}, fmt.Errorf("rolap: cannot materialize %v: %w", c.sourceViewNames(v), err)
	}
	srcOrder, ok := c.engine.Order(src)
	if !ok {
		return ingest.MaterializeResult{}, fmt.Errorf("rolap: source view vanished during materialization planning")
	}
	order := lattice.Canonical(v)
	gamma := c.opts.MergeGamma
	if gamma == 0 {
		gamma = 0.03
	}
	var res ingest.MaterializeResult
	err = c.engine.Maintain(func() error {
		r, err := ingest.MaterializeView(c.machine, ingest.MaterializeOptions{
			Src:        src,
			SrcOrder:   srcOrder,
			View:       v,
			Order:      order,
			MergeGamma: gamma,
			Agg:        c.op,
			Sketch:     c.sketch,
		})
		if err != nil {
			return err
		}
		res = r
		c.engine.AddView(v, order, r.Rows)
		c.updateTopology(v, order)
		return nil
	})
	if err != nil {
		return ingest.MaterializeResult{}, err
	}
	c.noteViewRows(v, res.Rows, res.SimSeconds, res.BytesMoved)
	return res, nil
}

// retireView drops view v behind the drain barrier, if the remaining
// set still covers it (some other materialized view is a strict
// superset — retiring a frontier view would lose answerability).
// Returns whether the view was actually retired. Caller holds ingMu.
func (c *Cube) retireView(v lattice.ViewID) (bool, error) {
	retired := false
	err := c.engine.Maintain(func() error {
		if _, ok := c.engine.Order(v); !ok {
			return nil // already gone
		}
		covered := false
		for _, u := range c.engine.Views() {
			if u != v && v.SubsetOf(u) {
				covered = true
				break
			}
		}
		if !covered {
			return nil // keep frontier views
		}
		// In-flight queries have drained (Maintain holds the machine
		// lock); plans still holding v fail with ErrStalePlan and
		// replan, and the version bump invalidates cached results.
		c.engine.RemoveView(v)
		ingest.RetireView(c.machine, v)
		c.updateTopology(v, nil)
		retired = true
		return nil
	})
	if err != nil {
		return false, err
	}
	if retired {
		c.noteViewRows(v, -1, 0, 0)
	}
	return retired, nil
}

// updateTopology applies one view add (order non-nil) or remove
// (order nil) to the cube's own topology maps, and drops the affected
// partition's retained schedule tree: a stale tree would silently
// omit the new view from future ingest delta builds (its rows would
// never reach the view), so ingest falls back to the deterministic
// schedule derived from the live orders. Caller holds ingMu and the
// engine maintenance lock; gather-path readers synchronize on topoMu.
func (c *Cube) updateTopology(v lattice.ViewID, order lattice.Order) {
	d := len(c.in.schema.Dimensions)
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if order != nil {
		c.orders[v] = order
		c.views = append(c.views, v)
		sort.Slice(c.views, func(i, j int) bool { return c.views[i] < c.views[j] })
	} else {
		delete(c.orders, v)
		for i, u := range c.views {
			if u == v {
				c.views = append(c.views[:i], c.views[i+1:]...)
				break
			}
		}
	}
	delete(c.trees, lattice.PartitionOf(v, d))
}

// noteViewRows folds one online materialization (rows >= 0) or
// retirement (rows < 0) into the cube's cumulative metrics. Caller
// holds ingMu, which also excludes the other writers of ViewRows
// (applyResult) and the topology (updateTopology).
func (c *Cube) noteViewRows(v lattice.ViewID, rows int64, simSeconds float64, bytesMoved int64) {
	c.metMu.Lock()
	defer c.metMu.Unlock()
	m := &c.metrics
	if m.ViewRows == nil {
		m.ViewRows = map[string]int64{}
	}
	if rows < 0 {
		delete(m.ViewRows, viewName(c.in, v))
	} else {
		m.ViewRows[viewName(c.in, v)] = rows
	}
	m.SimSeconds += simSeconds
	m.BytesMoved += bytesMoved
	if m.PhaseSeconds == nil {
		m.PhaseSeconds = map[string]float64{}
	}
	m.PhaseSeconds[ingest.PhaseAdvise] += simSeconds
	m.OutputRows, m.OutputBytes = 0, 0
	for u, o := range c.orders {
		n := m.ViewRows[viewName(c.in, u)]
		m.OutputRows += n
		m.OutputBytes += n * int64(record.RowBytes(len(o)))
	}
}
