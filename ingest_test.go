package rolap

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/record"
)

// randomFacts generates deterministic pseudo-random facts for the test
// schema, for splitting between an initial build and ingest batches.
func randomFacts(n int, seed int64) ([][]uint32, []int64) {
	rng := rand.New(rand.NewSource(seed))
	cards := []int{12, 40, 25, 3}
	rows := make([][]uint32, n)
	meas := make([]int64, n)
	for i := range rows {
		row := make([]uint32, len(cards))
		for j, c := range cards {
			row[j] = uint32(rng.Intn(c))
		}
		rows[i] = row
		meas[i] = int64(rng.Intn(100))
	}
	return rows, meas
}

func buildFromFacts(t *testing.T, rows [][]uint32, meas []int64, opts Options) *Cube {
	t.Helper()
	in, err := NewInput(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if err := in.AddRow(row, meas[i]); err != nil {
			t.Fatal(err)
		}
	}
	cube, err := Build(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// checkCubesEqual compares every materialized view of two cubes.
func checkCubesEqual(t *testing.T, got, want *Cube) {
	t.Helper()
	for _, dims := range want.Views() {
		gv, err := got.View(dims)
		if err != nil {
			t.Fatalf("view %v: %v", dims, err)
		}
		wv, err := want.View(dims)
		if err != nil {
			t.Fatal(err)
		}
		if !record.Equal(gv.rows, wv.rows) {
			t.Fatalf("view %v differs after ingest (got %d rows, want %d)", dims, gv.Len(), wv.Len())
		}
	}
}

func TestIngestMatchesRebuild(t *testing.T) {
	for _, tc := range []struct {
		name    string
		opts    Options
		batches []int
	}{
		{"p3-two-batches", Options{Processors: 3}, []int{120, 80}},
		{"p1", Options{Processors: 1}, []int{150}},
		{"p4-overlap-localtrees", Options{Processors: 4, OverlapComm: true, LocalScheduleTrees: true}, []int{90, 60, 50}},
		{"p2-max", Options{Processors: 2, Aggregate: Max}, []int{200}},
		{"p3-partial", Options{Processors: 3, SelectedViews: [][]string{
			{"store", "product", "month", "channel"},
			{"store", "product"},
			{"month"},
			{},
		}}, []int{100, 100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rows, meas := randomFacts(900, 17)
			base := 600
			cube := buildFromFacts(t, rows[:base], meas[:base], tc.opts)

			lo := base
			for _, bn := range tc.batches {
				im, err := cube.Ingest(rows[lo:lo+bn], meas[lo:lo+bn])
				if err != nil {
					t.Fatal(err)
				}
				if im.Rows != int64(bn) || im.SimSeconds <= 0 || im.DeltaMergeSeconds <= 0 {
					t.Fatalf("batch metrics implausible: %+v", im)
				}
				if len(im.ChangedViews) == 0 {
					t.Fatalf("nonempty batch changed no views")
				}
				lo += bn
			}
			fresh := buildFromFacts(t, rows[:lo], meas[:lo], tc.opts)
			checkCubesEqual(t, cube, fresh)

			met := cube.Metrics()
			if met.IngestedRows != int64(lo-base) || met.IngestBatches != int64(len(tc.batches)) {
				t.Fatalf("cumulative ingest counters wrong: %+v", met)
			}
			if met.DeltaMergeSeconds <= 0 || met.IngestSeconds <= 0 {
				t.Fatalf("ingest phase seconds missing: %+v", met)
			}
			// Post-ingest row counts must match a fresh build's.
			fmet := fresh.Metrics()
			for name, rows := range fmet.ViewRows {
				if met.ViewRows[name] != rows {
					t.Fatalf("ViewRows[%q] = %d after ingest, fresh build has %d", name, met.ViewRows[name], rows)
				}
			}
			if met.OutputRows != fmet.OutputRows {
				t.Fatalf("OutputRows %d after ingest, fresh build %d", met.OutputRows, fmet.OutputRows)
			}
		})
	}
}

func TestIngestQueriesSeeNewData(t *testing.T) {
	rows, meas := randomFacts(700, 23)
	base := 500
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})

	// Brute-force oracle over an explicit prefix of the facts.
	sum := func(n int, dims []string, key []uint32) int64 {
		names := []string{"month", "store", "product", "channel"}
		var total int64
		for i := 0; i < n; i++ {
			ok := true
			for k, dim := range dims {
				for j, nm := range names {
					if nm == dim && rows[i][j] != key[k] {
						ok = false
					}
				}
			}
			if ok {
				total += meas[i]
			}
		}
		return total
	}

	dims := []string{"store", "channel"}
	key := []uint32{rows[base][1], rows[base][3]} // a group the batch touches
	before, err := cube.Aggregate(dims, key)
	if err != nil {
		t.Fatal(err)
	}
	if want := sum(base, dims, key); before != want {
		t.Fatalf("pre-ingest aggregate %d, oracle %d", before, want)
	}
	if _, err := cube.Ingest(rows[base:], meas[base:]); err != nil {
		t.Fatal(err)
	}
	after, err := cube.Aggregate(dims, key)
	if err != nil {
		t.Fatal(err)
	}
	if want := sum(len(rows), dims, key); after != want {
		t.Fatalf("post-ingest aggregate %d, oracle %d", after, want)
	}
	// GroupBy (distributed engine path) agrees too.
	vw, err := cube.GroupBy(dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vw.Len(); i++ {
		k, m := vw.Row(i)
		if want := sum(len(rows), dims, k); m != want {
			t.Fatalf("GroupBy group %v = %d, oracle %d", k, m, want)
		}
	}
}

func TestIngesterTriggers(t *testing.T) {
	rows, meas := randomFacts(760, 41)
	base := 700
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})

	g, err := cube.NewIngester(IngesterOptions{MaxRows: 25})
	if err != nil {
		t.Fatal(err)
	}
	flushes := 0
	for i := base; i < len(rows); i++ {
		im, flushed, err := g.Add(rows[i], meas[i])
		if err != nil {
			t.Fatal(err)
		}
		if flushed {
			flushes++
			if im.Rows != 25 {
				t.Fatalf("trigger flush applied %d rows, want 25", im.Rows)
			}
		}
	}
	if flushes != (len(rows)-base)/25 {
		t.Fatalf("%d trigger flushes, want %d", flushes, (len(rows)-base)/25)
	}
	if g.Pending() != (len(rows)-base)%25 {
		t.Fatalf("pending %d, want %d", g.Pending(), (len(rows)-base)%25)
	}
	if _, err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.Pending() != 0 {
		t.Fatalf("pending %d after Flush", g.Pending())
	}
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 2})
	checkCubesEqual(t, cube, fresh)

	// Byte trigger: one row is RowBytes(4) bytes, so MaxBytes for two
	// rows flushes every second Add.
	cube2 := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
	g2, err := cube2.NewIngester(IngesterOptions{MaxBytes: 2 * int64(record.RowBytes(4))})
	if err != nil {
		t.Fatal(err)
	}
	if _, flushed, err := g2.Add(rows[base], meas[base]); err != nil || flushed {
		t.Fatalf("first add flushed=%v err=%v", flushed, err)
	}
	if _, flushed, err := g2.Add(rows[base+1], meas[base+1]); err != nil || !flushed {
		t.Fatalf("second add flushed=%v err=%v", flushed, err)
	}
}

func TestIngestCrashLeavesCubeUnchanged(t *testing.T) {
	rows, meas := randomFacts(800, 53)
	base := 650
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})
	snapshot := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})

	if err := cube.SetIngestFaults(&FaultPlan{Crashes: []Crash{
		{Processor: 1, Dimension: 2, Phase: "deltamerge"},
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := cube.Ingest(rows[base:], meas[base:])
	var fe *FailedIngestError
	if !errors.As(err, &fe) {
		t.Fatalf("ingest error = %v, want *FailedIngestError", err)
	}
	if fe.Processor != 1 || fe.Phase != "deltamerge" {
		t.Fatalf("crash misattributed: %+v", fe)
	}
	// The cube is queryable at its exact pre-batch contents.
	checkCubesEqual(t, cube, snapshot)
	if cube.Pending() != len(rows)-base {
		t.Fatalf("pending %d after failed batch, want %d", cube.Pending(), len(rows)-base)
	}
	if got := cube.Metrics().IngestBatches; got != 0 {
		t.Fatalf("failed batch counted: IngestBatches = %d", got)
	}

	// The plan is one-shot: retrying the buffered batch succeeds and
	// lands exactly where a fresh rebuild does.
	if _, err := cube.Flush(); err != nil {
		t.Fatal(err)
	}
	if cube.Pending() != 0 {
		t.Fatalf("pending %d after retry", cube.Pending())
	}
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 3})
	checkCubesEqual(t, cube, fresh)
}

func TestIngestValidation(t *testing.T) {
	rows, meas := randomFacts(300, 61)
	cube := buildFromFacts(t, rows[:250], meas[:250], Options{Processors: 2})

	if _, err := cube.Ingest(rows[250:], meas[250:251]); err == nil {
		t.Fatal("mismatched rows/measures accepted")
	}
	if _, err := cube.Ingest([][]uint32{{0, 0, 0}}, []int64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := cube.Ingest([][]uint32{{99, 0, 0, 0}}, []int64{1}); err == nil {
		t.Fatal("out-of-cardinality value accepted")
	}
	if cube.Pending() != 0 {
		t.Fatalf("rejected rows left %d pending", cube.Pending())
	}
	if _, err := cube.Ingest(nil, nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	if err := cube.SetIngestFaults(&FaultPlan{Crashes: []Crash{{Processor: 7}}}); err == nil {
		t.Fatal("fault plan addressing rank 7 on a 2-proc machine accepted")
	}

	ice := buildFromFacts(t, rows[:250], meas[:250], Options{Processors: 2, MinSupport: 50})
	if _, err := ice.Ingest(rows[250:], meas[250:]); err == nil {
		t.Fatal("iceberg cube accepted an ingest batch")
	}
	if _, err := ice.NewIngester(IngesterOptions{}); err == nil {
		t.Fatal("iceberg cube handed out an Ingester")
	}
}

func TestServerCacheInvalidatedByIngest(t *testing.T) {
	rows, meas := randomFacts(800, 71)
	base := 600
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})
	s, err := cube.NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dims := []string{"store", "month"}

	vw1, qm1, err := s.GroupBy(ctx, dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qm1.CacheHit {
		t.Fatal("first query hit an empty cache")
	}
	if _, qm2, err := s.GroupBy(ctx, dims, nil); err != nil || !qm2.CacheHit {
		t.Fatalf("repeat not cached: hit=%v err=%v", qm2.CacheHit, err)
	}

	if _, err := cube.Ingest(rows[base:], meas[base:]); err != nil {
		t.Fatal(err)
	}

	vw3, qm3, err := s.GroupBy(ctx, dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qm3.CacheHit {
		t.Fatal("post-ingest query served from the stale cache")
	}
	if record.Equal(vw1.rows, vw3.rows) {
		t.Fatal("post-ingest result identical to pre-ingest result (batch had no effect?)")
	}
	// The fresh result matches a scratch rebuild on all the facts.
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 3})
	want, err := fresh.GroupBy(dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equal(vw3.rows, want.rows) {
		t.Fatal("post-ingest served result differs from rebuild")
	}
	// And the new result is itself cached under the new version.
	if _, qm4, err := s.GroupBy(ctx, dims, nil); err != nil || !qm4.CacheHit {
		t.Fatalf("post-ingest repeat not cached: hit=%v err=%v", qm4.CacheHit, err)
	}
}

func TestServerConcurrentIngestAndQueries(t *testing.T) {
	rows, meas := randomFacts(900, 83)
	base := 500
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})
	s, err := cube.NewServer(ServerOptions{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	preTotal, err := cube.RangeAggregate([]string{"channel"}, []uint32{0}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 3})
	postTotal, err := fresh.RangeAggregate([]string{"channel"}, []uint32{0}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	// Queries race the ingest batches; every observed grand total must
	// be a consistent prefix state (pre-batch, between batches, or
	// final), never a torn mixture.
	valid := map[int64]bool{preTotal: true, postTotal: true}
	for lo := base; lo < len(rows); lo += 100 {
		mid := buildFromFacts(t, rows[:lo+100], meas[:lo+100], Options{Processors: 3})
		v, err := mid.RangeAggregate([]string{"channel"}, []uint32{0}, []uint32{2})
		if err != nil {
			t.Fatal(err)
		}
		valid[v] = true
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, _, err := s.RangeAggregate(ctx, []string{"channel"}, []uint32{0}, []uint32{2})
				if err != nil && !errors.Is(err, ErrServerOverloaded) {
					errc <- err
					return
				}
				if err == nil && !valid[got] {
					errc <- errors.New("query observed a torn cube state")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := base; lo < len(rows); lo += 100 {
			if _, err := cube.Ingest(rows[lo:lo+100], meas[lo:lo+100]); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	got, _, err := s.RangeAggregate(ctx, []string{"channel"}, []uint32{0}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if got != postTotal {
		t.Fatalf("final total %d, want %d", got, postTotal)
	}
	checkCubesEqual(t, cube, fresh)
}
