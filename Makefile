# Tier-1 verification gate (see ROADMAP.md). `make tier1` is what CI
# and pre-merge checks run: build + vet + full test suite, plus the
# race detector on the packages that execute real goroutines (the
# cluster's SPMD supersteps and samplesort's collective exchanges —
# the right correctness tool for the overlapped-communication path —
# core's crash-recovery restarts, mergepart's collective merge, and
# the query engine's concurrent serving path, plus the root package
# for the Server front end).

GO ?= go

.PHONY: tier1 build vet test race bench experiments qbench-smoke

tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cluster/... ./internal/samplesort/... ./internal/core/... ./internal/mergepart/... ./internal/queryengine/... .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

experiments:
	$(GO) run ./cmd/experiments -fig all

# Tiny serving workload as an end-to-end smoke test of the query
# subsystem (build -> serve -> report).
qbench-smoke:
	$(GO) run ./cmd/qbench -rows 2000 -queries 40 -p 1,2 -workers 4
