# Tier-1 verification gate (see ROADMAP.md). `make tier1` is what CI
# and pre-merge checks run: build + vet + full test suite, plus the
# race detector on the packages that execute real goroutines (the
# cluster's SPMD supersteps and samplesort's collective exchanges —
# the right correctness tool for the overlapped-communication path —
# core's crash-recovery restarts, mergepart's collective merge, and
# the query engine's concurrent serving path, plus the root package
# for the Server front end).

GO ?= go

.PHONY: tier1 build vet test race bench bench-figs bench-json bench-json-smoke bench-ingest-json bench-ingest-smoke experiments qbench-smoke qbench-replica-smoke bench-replica-json qbench-chaos-smoke bench-resilience-json qbench-advisor-smoke bench-advisor-json bench-storage-json bench-storage-smoke qbench-storage-smoke lint-aggop qbench-sketch-smoke bench-sketch-json

tier1: build vet test race lint-aggop

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cluster/... ./internal/samplesort/... ./internal/core/... ./internal/mergepart/... ./internal/ingest/... ./internal/queryengine/... ./internal/replica/... ./internal/faults/... ./internal/gen/... ./internal/advisor/... ./internal/record/... ./internal/colstore/... ./internal/sketch/... .

# AggOp / sketch-kind exhaustiveness guard: a new aggregate operator
# must be wired through every serve/merge switch (public enum,
# snapshot load, sketch store dispatch) or it silently degrades. Grep
# the cross-package switches, vet, and run the record-level guard test.
lint-aggop:
	./scripts/lint_aggop.sh

# Real wall-clock microbenchmarks for the sort/merge kernels, run long
# enough to be meaningful. (The old `bench` ran everything with
# -benchtime=1x, which times a single iteration — fine for the figure
# harness below, useless as a benchmark.)
bench:
	$(GO) test -bench=. -benchtime=2s -run=^$$ ./internal/record/ ./internal/extsort/

# Paper-figure benchmark sweep: each "iteration" is one full simulated
# experiment, so a single run (-benchtime=1x) is deliberate here.
bench-figs:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable kernel speedup report (ns/op, rows/sec, allocs/op,
# on/off speedups) written to BENCH_PR4.json.
bench-json:
	$(GO) run ./cmd/wallbench -out BENCH_PR4.json

bench-json-smoke:
	$(GO) run ./cmd/wallbench -smoke -out BENCH_PR4.json

# Incremental-ingest economics report (BENCH_PR5.json): one 1% batch
# versus a full rebuild, simulated and wall-clock, plus the two-batch
# equivalence diff against a fresh rebuild. The full run enforces the
# < 0.25 sim-cost-ratio acceptance bar; the smoke run is the CI gate
# (equivalence only — smoke sizes are access-latency bound).
bench-ingest-json:
	$(GO) run ./cmd/wallbench -ingest -out BENCH_PR5.json

bench-ingest-smoke:
	$(GO) run ./cmd/wallbench -ingest -smoke -out BENCH_PR5.json

experiments:
	$(GO) run ./cmd/experiments -fig all

# Tiny serving workload as an end-to-end smoke test of the query
# subsystem (build -> serve -> report).
qbench-smoke:
	$(GO) run ./cmd/qbench -rows 2000 -queries 40 -p 1,2 -workers 4

# Tiny replicated-serving workload: leader ingests while replicas serve
# (build -> replicate -> ingest+serve -> catch up -> report).
qbench-replica-smoke:
	$(GO) run ./cmd/qbench -rows 2000 -queries 40 -replicas 1,2 -ingest-batches 3 -ingest-rows 100 -workers 4

# Replica-scaling report (BENCH_PR6.json): read throughput and latency
# percentiles as replica count grows, with the leader ingesting
# throughout. The acceptance bar is >= 3x single-replica throughput at
# 4 replicas with p99 within 1.5x.
bench-replica-json:
	$(GO) run ./cmd/qbench -rows 40000 -queries 600 -replicas 1,2,4 -workers 8 -out BENCH_PR6.json

# Deterministic chaos smoke: serve a fixed workload through 4 replicas
# while one crash-loops, a second straggles, and the breakers, retries,
# hedges, and leader fallback mask it all. -verify checks every answer
# against the leader and exits nonzero on any wrong or failed query, so
# this is a CI gate on the resilience layer's correctness, not a perf
# number.
qbench-chaos-smoke:
	$(GO) run ./cmd/qbench -chaos -verify -rows 4000 -queries 240 -chaos-replicas 4 -workers 8

# Adaptive-materialization smoke: the three-arm advisor scenario
# (full / static-minimal / advisor) on a small workload with the gate
# on — the advisor arm must strictly improve p50 over static-minimal,
# converge to <= 1.25x the full-cube p50 within the 35% view budget,
# and answer every query identically to the full cube.
qbench-advisor-smoke:
	$(GO) run ./cmd/qbench -advisor -smoke -rows 4000 -queries 200 -p 2 -advise-every 25

# Advisor-convergence report (BENCH_PR8.json): the full-size scenario
# with the per-step trajectory (views, storage, window p50/p99), the
# p50-vs-full and view-fraction acceptance ratios, and the oracle
# check counts.
bench-advisor-json:
	$(GO) run ./cmd/qbench -advisor -smoke -rows 20000 -queries 400 -p 4 -advise-every 40 -out BENCH_PR8.json

# Columnar-storage report (BENCH_PR9.json): bytes/row for row vs
# columnar storage before and after attribute-value reordering, the
# whole-cube modelled footprint, build wall-clock with the store
# off/on, snapshot size and cold-load-to-first-query for v2 vs v3,
# snapshot-ship bytes bootstrapping 4 replicas, and the simulated
# query-latency comparison. Gates: >= 2x bytes/row vs row storage,
# query latency within 1.05x, byte-identical answers. The smoke run
# enforces the same gates at small sizes.
bench-storage-json:
	$(GO) run ./cmd/wallbench -storage -out BENCH_PR9.json

bench-storage-smoke:
	$(GO) run ./cmd/wallbench -storage -smoke -out BENCH_PR9.json

# Columnar-storage answer gate: replay one deterministic mixed
# workload (group-bys, filters, point and range aggregates) against
# the same cube built row-form and columnar, exiting nonzero unless
# every answer is byte-identical.
qbench-storage-smoke:
	$(GO) run ./cmd/qbench -storage -rows 6000 -p 4 -queries 200

# Holistic-measure gates: the three-arm sketch experiment (distinct
# and quantile estimates vs the exact gather oracle across
# cardinalities and percentile ranks, build-cost overhead, and the
# kernels-on/off blob determinism check). The run exits nonzero unless
# every estimate is within the 5% bound and the sealed sketch blobs
# are bit-identical across kernel paths. The smoke run is the CI gate
# at reduced size; the full run writes BENCH_PR10.json.
qbench-sketch-smoke:
	$(GO) run ./cmd/qbench -sketch -rows 8000 -seed 42

bench-sketch-json:
	$(GO) run ./cmd/qbench -sketch -rows 40000 -seed 42 -out BENCH_PR10.json

# Serving-resilience report (BENCH_PR7.json): the verified chaos
# scenario (goodput and wall latency with 1-of-4 replicas
# crash-looping) plus the flash-crowd comparison (coalescing +
# stale-serve ladder vs a control with both disabled under a Zipf
# hot-key stampede). Acceptance: goodput >= 90% with zero wrong
# answers, and the resilient arm serving the full stream the control
# sheds.
bench-resilience-json:
	$(GO) run ./cmd/qbench -chaos -flashcrowd -verify -rows 20000 -queries 800 -chaos-replicas 4 -workers 8 -out BENCH_PR7.json
