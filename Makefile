# Tier-1 verification gate (see ROADMAP.md). `make tier1` is what CI
# and pre-merge checks run: build + vet + full test suite, plus the
# race detector on the packages that execute real goroutines (the
# cluster's SPMD supersteps and samplesort's collective exchanges —
# the right correctness tool for the overlapped-communication path —
# and, since the fault/recovery work, core's crash-recovery restarts
# and mergepart's collective merge).

GO ?= go

.PHONY: tier1 build vet test race bench experiments

tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cluster/... ./internal/samplesort/... ./internal/core/... ./internal/mergepart/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

experiments:
	$(GO) run ./cmd/experiments -fig all
