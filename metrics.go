package rolap

import "repro/internal/core"

// Metrics summarizes a cube build on the simulated cluster. Simulated
// seconds are in the selected Hardware's cost model (they reproduce
// the paper's 2003 Beowulf timings by default), independent of the
// host machine.
type Metrics struct {
	// Processors is the shared-nothing machine size.
	Processors int
	// SimSeconds is the simulated parallel wall-clock time.
	SimSeconds float64
	// PhaseSeconds breaks the makespan into the algorithm's phases:
	// "partition", "plan", "build", "merge".
	PhaseSeconds map[string]float64
	// BytesMoved is the total network volume.
	BytesMoved int64
	// MergeBytes is the network volume of the Merge–Partitions phase
	// (the paper's Figure 8b metric).
	MergeBytes int64
	// OutputRows and OutputBytes size the materialized cube in row
	// format; OutputBytesStored is the modelled on-disk footprint after
	// columnar compression (equal to OutputBytes when the columnar
	// store is disabled).
	OutputRows        int64
	OutputBytes       int64
	OutputBytesStored int64
	// CommSeconds is the communication component of the makespan;
	// MaskableCommFraction bounds the §4.1 overlap optimization.
	// OverlappedCommSeconds is the communication actually masked behind
	// local work (non-zero only with Options.OverlapComm).
	CommSeconds           float64
	MaskableCommFraction  float64
	OverlappedCommSeconds float64
	// Shifts counts sample-sort global shifts; Resorts counts merge
	// re-sorts (non-zero only with local schedule trees).
	Shifts  int
	Resorts int
	// ViewRows maps each view (comma-joined sorted dimension names,
	// "" for the grand total) to its global row count.
	ViewRows map[string]int64
	// RetriedMessages counts h-relation payloads retransmitted to
	// repair injected drops and corruptions (Options.Faults).
	RetriedMessages int64
	// CheckpointBytes is the total bytes written to checkpoint state
	// (neighbor replicas and manifests) across all processors, and
	// CheckpointSeconds the checkpoint phase's makespan contribution
	// (non-zero only with Options.Checkpoint.Enabled).
	CheckpointBytes   int64
	CheckpointSeconds float64
	// RecoverySeconds is the time spent recovering from crashes
	// (failure detection, replica adoption, rebalancing), and
	// FailedProcessors the original ranks of the processors whose
	// crashes the build survived.
	RecoverySeconds  float64
	FailedProcessors []int
	// IngestedRows and IngestBatches count facts and batches applied by
	// incremental maintenance (Cube.Ingest) since the build.
	IngestedRows  int64
	IngestBatches int64
	// IngestSeconds is the simulated time spent building sorted deltas
	// ("ingest" phase); DeltaMergeSeconds and DeltaMergeBytes are the
	// makespan and network volume of merging deltas into the live views
	// ("deltamerge" phase). SimSeconds and BytesMoved include both.
	IngestSeconds     float64
	DeltaMergeSeconds float64
	DeltaMergeBytes   int64
	// SketchBytes is the serialized size of the sketch state backing a
	// holistic cube's group measures after the build; ViewSketchBytes
	// is the per-view breakdown (same keys as ViewRows). Zero for
	// algebraic cubes.
	SketchBytes     int64
	ViewSketchBytes map[string]int64
}

// ReplicaStats are one read replica's replication progress and serving
// counters.
type ReplicaStats struct {
	// State is "live" (within the staleness bound), "catchingup"
	// (running but beyond it), "down" (crashed, re-bootstrapping), or
	// "failed" (retired permanently).
	State string
	// Breaker is the replica's circuit-breaker state: "closed",
	// "open", "half-open", or "disabled".
	Breaker string
	// Applied is the last leader batch sequence applied; Lag is the
	// replica's distance behind the leader in batches.
	Applied uint64
	Lag     uint64
	// Routed counts reads ever routed to this replica (survives
	// re-bootstraps).
	Routed int64
	// Bootstraps counts snapshot loads (1 for a replica that never
	// crashed); Crashes counts failures, injected or real.
	Bootstraps int64
	Crashes    int64
	// Server holds the replica's query-server counters. A re-bootstrap
	// replaces the server, so these reset when a replica crashes.
	Server ServerStats
}

// ReplicaSetStats snapshot a replica set's replication and serving
// state.
type ReplicaSetStats struct {
	// LeaderSeq is the leader's last committed batch sequence;
	// SnapshotSeq the sequence of the current bootstrap snapshot;
	// DeltaLogLen the number of retained (uncompacted) delta-log
	// batches.
	LeaderSeq   uint64
	SnapshotSeq uint64
	DeltaLogLen int
	// Routed counts reads routed across all replicas; StalenessWaits
	// counts reads that had to block because no replica was within the
	// staleness bound.
	Routed         int64
	StalenessWaits int64
	// SnapshotShipBytes totals the snapshot bytes shipped to bootstrap
	// replicas (initial bootstraps plus crash-recovery re-bootstraps);
	// DeltaShipBytes totals the modelled on-wire bytes of shipped delta
	// batches. Both shrink when the columnar store is enabled: snapshots
	// ship as persist-v3 columnar images and delta batches ship
	// compressed.
	SnapshotShipBytes int64
	DeltaShipBytes    int64
	// Resilience totals the serving path's failure-policy activity.
	Resilience ResilienceStats
	// Replicas has one entry per replica, by index.
	Replicas []ReplicaStats
	// LeaderServer holds the leader fallback server's counters (zero
	// when fallback is disabled). Queries here were served by the
	// leader's own cube because no replica could take them.
	LeaderServer ServerStats
}

// ResilienceStats total the replica set's failure-policy activity:
// what the retry, breaker, hedging, and fallback machinery actually
// did. All counters are cumulative over the set's lifetime.
type ResilienceStats struct {
	// Retries counts failover retries (a query re-attempted on a
	// different replica after a failure or overload); Failovers counts
	// queries that ultimately succeeded on a replica other than their
	// first. Retries >= Failovers.
	Retries   int64
	Failovers int64
	// LeaderFallbacks counts queries served by the leader's own cube
	// because no replica could take them (all crashed/retired, retries
	// exhausted, or none eligible within the failover wait).
	LeaderFallbacks int64
	// HedgesLaunched counts second attempts started because the first
	// exceeded the latency threshold; HedgesWon of those finished
	// first, HedgesLost lost the race to the original.
	HedgesLaunched int64
	HedgesWon      int64
	HedgesLost     int64
	// ServeCrashes counts injected serving-time replica crashes
	// observed by the read path (ReplicaOptions.ServeFaults).
	ServeCrashes int64
	// BreakerOpens, BreakerProbes, and BreakerCloses total the
	// per-replica circuit-breaker transitions.
	BreakerOpens  int64
	BreakerProbes int64
	BreakerCloses int64
}

// Metrics returns the cube's cumulative metrics (the build plus every
// applied ingest batch). The maps are copies, stable against later
// batches.
func (c *Cube) Metrics() Metrics {
	c.metMu.RLock()
	defer c.metMu.RUnlock()
	m := c.metrics
	if c.metrics.PhaseSeconds != nil {
		m.PhaseSeconds = make(map[string]float64, len(c.metrics.PhaseSeconds))
		for k, v := range c.metrics.PhaseSeconds {
			m.PhaseSeconds[k] = v
		}
	}
	if c.metrics.ViewRows != nil {
		m.ViewRows = make(map[string]int64, len(c.metrics.ViewRows))
		for k, v := range c.metrics.ViewRows {
			m.ViewRows[k] = v
		}
	}
	m.FailedProcessors = append([]int(nil), c.metrics.FailedProcessors...)
	if c.metrics.ViewSketchBytes != nil {
		m.ViewSketchBytes = make(map[string]int64, len(c.metrics.ViewSketchBytes))
		for k, v := range c.metrics.ViewSketchBytes {
			m.ViewSketchBytes[k] = v
		}
	}
	return m
}

func publicMetrics(in *Input, met core.Metrics) Metrics {
	m := Metrics{
		Processors:            met.P,
		SimSeconds:            met.SimSeconds,
		PhaseSeconds:          met.PhaseSeconds,
		BytesMoved:            met.BytesMoved,
		MergeBytes:            met.BytesByPhase["merge"],
		OutputRows:            met.OutputRows,
		OutputBytes:           met.OutputBytes,
		OutputBytesStored:     met.OutputBytesStored,
		CommSeconds:           met.CommSeconds,
		MaskableCommFraction:  met.MaskableCommFraction(),
		OverlappedCommSeconds: met.OverlappedCommSeconds,
		Shifts:                met.Shifts,
		Resorts:               met.Resorts,
		ViewRows:              make(map[string]int64, len(met.ViewRows)),
		RetriedMessages:       met.RetriedMessages,
		CheckpointBytes:       met.CheckpointBytes,
		CheckpointSeconds:     met.CheckpointSeconds,
		RecoverySeconds:       met.RecoverySeconds,
		FailedProcessors:      met.FailedRanks,
	}
	for v, rows := range met.ViewRows {
		m.ViewRows[viewName(in, v)] = rows
	}
	m.SketchBytes = met.SketchBytes
	if len(met.ViewSketchBytes) > 0 {
		m.ViewSketchBytes = make(map[string]int64, len(met.ViewSketchBytes))
		for v, b := range met.ViewSketchBytes {
			m.ViewSketchBytes[viewName(in, v)] = b
		}
	}
	return m
}
