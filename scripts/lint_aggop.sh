#!/usr/bin/env bash
# lint_aggop.sh — AggOp / sketch-kind exhaustiveness guard.
#
# A new aggregate operator must be wired through every serve/merge
# switch that dispatches on the op, or it silently degrades (loads as
# Sum, serves no sketches, ...). The package-level contract (String,
# Holistic, Combine, AggOps ordering) is pinned by
# TestAggOpsExhaustive in internal/record; this script greps the
# cross-package switch sites that a Go compiler cannot check for
# exhaustiveness, then runs vet and the guard test.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Every operator listed in record.AggOps() ...
ops=$(sed -n 's/.*return \[\]AggOp{\(.*\)}.*/\1/p' internal/record/agg.go | tr -d ' ' | tr ',' '\n')
if [ -z "$ops" ]; then
  echo "lint-aggop: could not extract AggOps() from internal/record/agg.go" >&2
  exit 1
fi

# ... must appear in the public enum mapping (rolap.go: Aggregate.op)
# and the snapshot load mapping (persist.go: LoadCube), or cubes built
# or loaded with the new op fall through to Sum.
for op in $ops; do
  for f in rolap.go persist.go; do
    if ! grep -q "record\.$op\b" "$f"; then
      echo "lint-aggop: record.$op missing from $f" >&2
      fail=1
    fi
  done
done

# Every sketch kind must be dispatched by the store's constructor and
# decoder switches, or holistic state of that kind cannot round-trip.
kinds=$(grep -o 'Kind[A-Z][A-Za-z]*' internal/sketch/sketch.go | sort -u)
for kind in $kinds; do
  for fn in newSketch decodeBlob; do
    if ! sed -n "/func (s \*Store) $fn/,/^}/p" internal/sketch/store.go | grep -q "$kind\b"; then
      echo "lint-aggop: sketch.$kind missing from Store.$fn" >&2
      fail=1
    fi
  done
done

# Holistic ops may never reach an Op.Combine call without sketch
# state: the only bare-op aggregation entry points allowed outside
# internal/record and tests are the *Op wrappers themselves.
if grep -rn --include='*.go' 'record\.\(SortAggregateOp\|AggregateSortedOp\|MergeSortedAggregateOp\)' \
    --exclude='*_test.go' internal/core internal/ingest internal/queryengine ./*.go 2>/dev/null; then
  echo "lint-aggop: bare-op aggregation in a holistic-capable path; use the Agg variants" >&2
  fail=1
fi

[ "$fail" -eq 0 ] || exit 1

go vet ./internal/record/ ./internal/sketch/ .
go test -run 'TestAggOpsExhaustive|TestAggSeal' ./internal/record/ >/dev/null

echo "lint-aggop: OK"
