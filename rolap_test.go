package rolap

import (
	"math/rand"
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{Dimensions: []Dimension{
		{Name: "month", Cardinality: 12}, // deliberately not card-sorted
		{Name: "store", Cardinality: 40},
		{Name: "product", Cardinality: 25},
		{Name: "channel", Cardinality: 3},
	}}
}

// loadRandom fills an input with deterministic pseudo-random facts and
// returns a ground-truth group-by oracle.
func loadRandom(t *testing.T, n int, seed int64) (*Input, func(dims []string, key []uint32) int64) {
	t.Helper()
	in, err := NewInput(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	type fact struct {
		vals [4]uint32
		m    int64
	}
	var facts []fact
	cards := []int{12, 40, 25, 3}
	for i := 0; i < n; i++ {
		var f fact
		for j, c := range cards {
			f.vals[j] = uint32(rng.Intn(c))
		}
		f.m = int64(rng.Intn(100))
		facts = append(facts, f)
		if err := in.AddRow(f.vals[:], f.m); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"month", "store", "product", "channel"}
	oracle := func(dims []string, key []uint32) int64 {
		var total int64
		for _, f := range facts {
			ok := true
			for k, dim := range dims {
				for j, nm := range names {
					if nm == dim && f.vals[j] != key[k] {
						ok = false
					}
				}
			}
			if ok {
				total += f.m
			}
		}
		return total
	}
	return in, oracle
}

func TestSchemaValidation(t *testing.T) {
	bad := []Schema{
		{},
		{Dimensions: []Dimension{{Name: "", Cardinality: 2}}},
		{Dimensions: []Dimension{{Name: "a", Cardinality: 0}}},
		{Dimensions: []Dimension{{Name: "a", Cardinality: 2}, {Name: "a", Cardinality: 2}}},
	}
	for i, s := range bad {
		if _, err := NewInput(s); err == nil {
			t.Errorf("schema %d should be rejected", i)
		}
	}
}

func TestAddRowValidation(t *testing.T) {
	in, _ := NewInput(testSchema())
	if err := in.AddRow([]uint32{1, 2}, 1); err == nil {
		t.Fatal("short row accepted")
	}
	if err := in.AddRow([]uint32{12, 0, 0, 0}, 1); err == nil {
		t.Fatal("out-of-range month accepted")
	}
	if err := in.AddRow([]uint32{11, 39, 24, 2}, 1); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d", in.Len())
	}
}

func TestBuildFullCubeAndQuery(t *testing.T) {
	in, oracle := loadRandom(t, 2000, 1)
	cube, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cube.Views()); got != 16 {
		t.Fatalf("views = %d, want 16", got)
	}
	if cube.Processors() != 4 {
		t.Fatalf("Processors = %d", cube.Processors())
	}
	// Point queries on materialized views across several shapes.
	queries := []struct {
		dims []string
		key  []uint32
	}{
		{[]string{"store"}, []uint32{7}},
		{[]string{"month", "channel"}, []uint32{3, 1}},
		{[]string{"product", "store"}, []uint32{11, 20}},
		{[]string{"month", "store", "product", "channel"}, []uint32{5, 5, 5, 1}},
		{nil, nil},
	}
	for _, q := range queries {
		got, err := cube.Aggregate(q.dims, q.key)
		if err != nil {
			t.Fatalf("query %v: %v", q.dims, err)
		}
		if want := oracle(q.dims, q.key); got != want {
			t.Fatalf("query %v key %v = %d, want %d", q.dims, q.key, got, want)
		}
	}
}

func TestViewContents(t *testing.T) {
	in, oracle := loadRandom(t, 1500, 2)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cube.View([]string{"channel", "month"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vw.Attributes) != 2 {
		t.Fatalf("attributes = %v", vw.Attributes)
	}
	var sum int64
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		// Cross-check each group against the oracle.
		if want := oracle(vw.Attributes, key); want != m {
			t.Fatalf("group %v = %d, want %d", key, m, want)
		}
		sum += m
		// Aggregate must agree with Row.
		got, ok := vw.Aggregate(key)
		if !ok || got != m {
			t.Fatalf("Aggregate(%v) = %d,%v", key, got, ok)
		}
	}
	if total, _ := cube.Aggregate(nil, nil); total != sum {
		t.Fatalf("view mass %d != grand total %d", sum, total)
	}
	if _, ok := vw.Aggregate([]uint32{99, 99}); ok {
		t.Fatal("phantom group found")
	}
	if _, ok := vw.Aggregate([]uint32{1}); ok {
		t.Fatal("short key accepted")
	}
}

func TestPartialCubeSelectionAndFallback(t *testing.T) {
	in, oracle := loadRandom(t, 1200, 3)
	cube, err := Build(in, Options{
		Processors: 3,
		SelectedViews: [][]string{
			{"store", "product"},
			{"store"},
			{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cube.Views()); got != 3 {
		t.Fatalf("views = %d, want 3", got)
	}
	// Materialized view answered directly.
	got, err := cube.Aggregate([]string{"store"}, []uint32{4})
	if err != nil || got != oracle([]string{"store"}, []uint32{4}) {
		t.Fatalf("materialized query wrong: %d, %v", got, err)
	}
	// Unmaterialized view ("product") answered via the smallest
	// materialized superset (store,product).
	got, err = cube.Aggregate([]string{"product"}, []uint32{9})
	if err != nil || got != oracle([]string{"product"}, []uint32{9}) {
		t.Fatalf("fallback query wrong: %d, %v", got, err)
	}
	// A view outside every materialized superset errors.
	if _, err := cube.Aggregate([]string{"month"}, []uint32{1}); err == nil {
		t.Fatal("unanswerable query did not error")
	}
	// Unmaterialized views are not gatherable.
	if _, err := cube.View([]string{"month"}); err == nil {
		t.Fatal("View on unmaterialized view did not error")
	}
}

func TestBuildOptionValidation(t *testing.T) {
	in, _ := loadRandom(t, 100, 4)
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := Build(in, Options{Processors: -1}); err == nil {
		t.Fatal("negative processors accepted")
	}
	if _, err := Build(in, Options{SelectedViews: [][]string{{"bogus"}}}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := Build(in, Options{SelectedViews: [][]string{{"store", "store"}}}); err == nil {
		t.Fatal("repeated dimension accepted")
	}
}

func TestBuildVariantsAgree(t *testing.T) {
	in, _ := loadRandom(t, 1500, 5)
	base, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Processors: 1},
		{Processors: 7},
		{Processors: 4, LocalScheduleTrees: true},
		{Processors: 4, FlajoletMartin: true},
		{Processors: 4, Hardware: ModernCluster},
		{Processors: 4, MergeGamma: 0.07},
	}
	for i, opts := range variants {
		c, err := Build(in, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if c.Metrics().OutputRows != base.Metrics().OutputRows {
			t.Fatalf("variant %d rows %d != base %d", i, c.Metrics().OutputRows, base.Metrics().OutputRows)
		}
	}
}

func TestMetrics(t *testing.T) {
	in, _ := loadRandom(t, 2000, 6)
	cube, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	met := cube.Metrics()
	if met.SimSeconds <= 0 || met.OutputRows == 0 || met.OutputBytes == 0 {
		t.Fatalf("metrics empty: %+v", met)
	}
	if met.BytesMoved <= 0 || met.MergeBytes < 0 {
		t.Fatalf("communication metrics wrong: %+v", met)
	}
	for _, name := range []string{"partition", "build", "merge"} {
		if met.PhaseSeconds[name] <= 0 {
			t.Fatalf("phase %s missing", name)
		}
	}
	// The grand total view has one row.
	if met.ViewRows[""] != 1 {
		t.Fatalf("grand total rows = %d", met.ViewRows[""])
	}
	// View keys are sorted dimension names.
	found := false
	for k := range met.ViewRows {
		if k == "channel,month" {
			found = true
		}
		if strings.Contains(k, " ") {
			t.Fatalf("view key %q malformed", k)
		}
	}
	if !found {
		t.Fatal("expected view key channel,month")
	}
}

// TestOverlapCommOption checks the public plumbing of the §4.1
// overlap: same cube, lower simulated time, improvement within the
// maskable bound, and the masked seconds surfaced in Metrics.
func TestOverlapCommOption(t *testing.T) {
	in, oracle := loadRandom(t, 3000, 8)
	base, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := Build(in, Options{Processors: 4, OverlapComm: true})
	if err != nil {
		t.Fatal(err)
	}
	bm, om := base.Metrics(), ov.Metrics()
	if om.SimSeconds >= bm.SimSeconds {
		t.Fatalf("overlap not faster: %.3f vs %.3f", om.SimSeconds, bm.SimSeconds)
	}
	if imp := (bm.SimSeconds - om.SimSeconds) / bm.SimSeconds; imp > bm.MaskableCommFraction+1e-9 {
		t.Fatalf("improvement %.4f exceeds maskable bound %.4f", imp, bm.MaskableCommFraction)
	}
	if bm.OverlappedCommSeconds != 0 {
		t.Fatalf("baseline masked %v seconds without OverlapComm", bm.OverlappedCommSeconds)
	}
	if om.OverlappedCommSeconds <= 0 {
		t.Fatal("overlap build masked nothing")
	}
	// The build itself is unchanged: same cube, same answers.
	if bm.OutputRows != om.OutputRows {
		t.Fatalf("overlap changed the cube: %d vs %d rows", om.OutputRows, bm.OutputRows)
	}
	got, err := ov.Aggregate([]string{"store", "month"}, []uint32{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle([]string{"store", "month"}, []uint32{3, 5}); got != want {
		t.Fatalf("overlapped cube answers %d, want %d", got, want)
	}
}

func TestModernHardwareFaster(t *testing.T) {
	in, _ := loadRandom(t, 2000, 7)
	old, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := Build(in, Options{Processors: 4, Hardware: ModernCluster})
	if err != nil {
		t.Fatal(err)
	}
	if modern.Metrics().SimSeconds >= old.Metrics().SimSeconds {
		t.Fatal("modern cluster not faster than the 2003 Beowulf")
	}
}

func TestMinMaxAggregates(t *testing.T) {
	in, _ := NewInput(testSchema())
	rng := rand.New(rand.NewSource(11))
	type key struct{ s, m uint32 }
	minTruth := map[key]int64{}
	maxTruth := map[key]int64{}
	for i := 0; i < 1000; i++ {
		vals := []uint32{uint32(rng.Intn(12)), uint32(rng.Intn(40)), uint32(rng.Intn(25)), uint32(rng.Intn(3))}
		m := int64(rng.Intn(1000) - 500)
		if err := in.AddRow(vals, m); err != nil {
			t.Fatal(err)
		}
		k := key{vals[1], vals[0]}
		if old, ok := minTruth[k]; !ok || m < old {
			minTruth[k] = m
		}
		if old, ok := maxTruth[k]; !ok || m > old {
			maxTruth[k] = m
		}
	}
	for _, tc := range []struct {
		agg   Aggregate
		truth map[key]int64
	}{{Min, minTruth}, {Max, maxTruth}} {
		cube, err := Build(in, Options{Processors: 4, Aggregate: tc.agg})
		if err != nil {
			t.Fatal(err)
		}
		vw, err := cube.View([]string{"store", "month"})
		if err != nil {
			t.Fatal(err)
		}
		if vw.Len() != len(tc.truth) {
			t.Fatalf("agg %v: %d groups, want %d", tc.agg, vw.Len(), len(tc.truth))
		}
		for i := 0; i < vw.Len(); i++ {
			kv, m := vw.Row(i)
			// Attributes order may be (store,month) or (month,store).
			var k key
			if vw.Attributes[0] == "store" {
				k = key{kv[0], kv[1]}
			} else {
				k = key{kv[1], kv[0]}
			}
			if tc.truth[k] != m {
				t.Fatalf("agg %v group %v = %d, want %d", tc.agg, k, m, tc.truth[k])
			}
		}
	}
}

func TestFallbackQueryRespectsOperator(t *testing.T) {
	// A Min partial cube: the fallback path (answering an
	// unmaterialized view from a superset) must combine with MIN, not
	// SUM.
	in, _ := NewInput(testSchema())
	rng := rand.New(rand.NewSource(41))
	truth := map[uint32]int64{}
	for i := 0; i < 600; i++ {
		vals := []uint32{uint32(rng.Intn(12)), uint32(rng.Intn(40)), uint32(rng.Intn(25)), uint32(rng.Intn(3))}
		m := int64(rng.Intn(1000))
		if err := in.AddRow(vals, m); err != nil {
			t.Fatal(err)
		}
		if old, ok := truth[vals[1]]; !ok || m < old {
			truth[vals[1]] = m
		}
	}
	cube, err := Build(in, Options{
		Processors:    2,
		Aggregate:     Min,
		SelectedViews: [][]string{{"store", "month"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// "store" alone is unmaterialized: answered from (store,month).
	for s, want := range truth {
		got, err := cube.Aggregate([]string{"store"}, []uint32{s})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("min(store %d) = %d, want %d", s, got, want)
		}
	}
}

func TestIcebergOption(t *testing.T) {
	in, oracle := loadRandom(t, 2000, 51)
	cube, err := Build(in, Options{Processors: 3, MinSupport: 300})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cube.View([]string{"store"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		if m < 300 {
			t.Fatalf("group %v below threshold: %d", key, m)
		}
		if want := oracle([]string{"store"}, key); m != want {
			t.Fatalf("group %v = %d, want %d", key, m, want)
		}
	}
	full, _ := Build(in, Options{Processors: 3})
	if cube.Metrics().OutputRows >= full.Metrics().OutputRows {
		t.Fatal("iceberg cube not smaller")
	}
}
