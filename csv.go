package rolap

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSVOptions configures LoadCSV.
type CSVOptions struct {
	// Comma is the field delimiter (default ',').
	Comma rune
	// MeasureColumn names the measure column (default "measure"). All
	// other columns become dimensions. If the named column is absent,
	// every row gets measure 1 (COUNT semantics).
	MeasureColumn string
}

// LoadCSV reads a fact table from CSV. The first record is the
// header: every column except the measure column becomes a dimension
// whose string values are dictionary-encoded into dense codes;
// cardinalities are the observed distinct counts. The returned Input
// remembers the dictionaries, so views gathered from the built cube
// can decode values back to strings (View.Decode, View.WriteCSV).
//
// This is the ROLAP integration path the paper motivates: fact tables
// arrive as relations, and every materialized view leaves as one.
func LoadCSV(r io.Reader, opts CSVOptions) (*Input, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("rolap: reading CSV header: %w", err)
	}
	measureName := opts.MeasureColumn
	if measureName == "" {
		measureName = "measure"
	}
	measCol := -1
	var dimNames []string
	var dimCols []int
	for c, name := range header {
		if name == measureName && measCol == -1 {
			measCol = c
			continue
		}
		dimNames = append(dimNames, name)
		dimCols = append(dimCols, c)
	}
	if len(dimNames) == 0 {
		return nil, fmt.Errorf("rolap: CSV has no dimension columns")
	}

	// First pass: read all records, building dictionaries.
	type rawRow struct {
		codes []uint32
		meas  int64
	}
	dicts := make([]map[string]uint32, len(dimNames))
	values := make([][]string, len(dimNames)) // code -> string
	for i := range dicts {
		dicts[i] = map[string]uint32{}
	}
	var rows []rawRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("rolap: reading CSV line %d: %w", line, err)
		}
		row := rawRow{codes: make([]uint32, len(dimNames)), meas: 1}
		for k, c := range dimCols {
			if c >= len(rec) {
				return nil, fmt.Errorf("rolap: CSV line %d has %d fields, header has %d", line, len(rec), len(header))
			}
			v := rec[c]
			code, ok := dicts[k][v]
			if !ok {
				code = uint32(len(values[k]))
				dicts[k][v] = code
				values[k] = append(values[k], v)
			}
			row.codes[k] = code
		}
		if measCol >= 0 {
			if measCol >= len(rec) {
				return nil, fmt.Errorf("rolap: CSV line %d missing measure column", line)
			}
			m, err := strconv.ParseInt(rec[measCol], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rolap: CSV line %d: bad measure %q", line, rec[measCol])
			}
			row.meas = m
		}
		rows = append(rows, row)
	}

	// Canonical freeze-time attribute-value reordering (Kaser & Lemire):
	// codes are reassigned by descending frequency, ties broken by value
	// ascending. Two loads of the same logical data now produce the same
	// dictionaries regardless of row order — first-appearance codes did
	// not — and hot values get the smallest codes, which lengthens runs
	// and narrows bit widths in the sorted columnar storage.
	for k := range dimNames {
		freq := make([]int64, len(values[k]))
		for _, row := range rows {
			freq[row.codes[k]]++
		}
		perm := make([]int, len(values[k])) // new code -> old code
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool {
			if freq[perm[a]] != freq[perm[b]] {
				return freq[perm[a]] > freq[perm[b]]
			}
			return values[k][perm[a]] < values[k][perm[b]]
		})
		remap := make([]uint32, len(values[k])) // old code -> new code
		newVals := make([]string, len(values[k]))
		for newCode, oldCode := range perm {
			remap[oldCode] = uint32(newCode)
			newVals[newCode] = values[k][oldCode]
		}
		values[k] = newVals
		for i := range rows {
			rows[i].codes[k] = remap[rows[i].codes[k]]
		}
	}

	// Build the schema from observed cardinalities and load the rows.
	schema := Schema{Dimensions: make([]Dimension, len(dimNames))}
	for k, name := range dimNames {
		card := len(values[k])
		if card == 0 {
			card = 1 // empty input: keep the schema valid
		}
		schema.Dimensions[k] = Dimension{Name: name, Cardinality: card}
	}
	in, err := NewInput(schema)
	if err != nil {
		return nil, err
	}
	in.dicts = values
	for _, row := range rows {
		if err := in.AddRow(row.codes, row.meas); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// IngestCSV reads a batch of new facts from CSV and applies it to the
// live cube as one incremental maintenance batch (Cube.Ingest). The
// header must name every cube dimension exactly once, in any order
// (plus an optional measure column, CSVOptions semantics);
// values are resolved through the cube's dictionaries when it was
// loaded from CSV, and parsed as numeric codes otherwise. Unknown
// dictionary values and out-of-cardinality codes are errors — the
// schema is fixed at build time — and reject the whole batch before
// any row is applied.
func (c *Cube) IngestCSV(r io.Reader, opts CSVOptions) (IngestMetrics, error) {
	if err := c.ingestable(); err != nil {
		return IngestMetrics{}, err
	}
	in := c.in
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	header, err := cr.Read()
	if err != nil {
		return IngestMetrics{}, fmt.Errorf("rolap: reading CSV header: %w", err)
	}
	measureName := opts.MeasureColumn
	if measureName == "" {
		measureName = "measure"
	}
	measCol := -1
	colDim := make([]int, len(header)) // column -> user dimension index, -1 for measure
	seen := make([]bool, len(in.schema.Dimensions))
	for col, name := range header {
		if name == measureName && measCol == -1 {
			measCol = col
			colDim[col] = -1
			continue
		}
		found := -1
		for u, d := range in.schema.Dimensions {
			if d.Name == name {
				found = u
				break
			}
		}
		if found == -1 {
			return IngestMetrics{}, fmt.Errorf("rolap: CSV column %q is not a cube dimension", name)
		}
		if seen[found] {
			return IngestMetrics{}, fmt.Errorf("rolap: CSV column %q repeated", name)
		}
		seen[found] = true
		colDim[col] = found
	}
	for u, ok := range seen {
		if !ok {
			return IngestMetrics{}, fmt.Errorf("rolap: CSV is missing dimension column %q", in.schema.Dimensions[u].Name)
		}
	}

	var rows [][]uint32
	var meas []int64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return IngestMetrics{}, fmt.Errorf("rolap: reading CSV line %d: %w", line, err)
		}
		if len(rec) < len(header) {
			return IngestMetrics{}, fmt.Errorf("rolap: CSV line %d has %d fields, header has %d", line, len(rec), len(header))
		}
		row := make([]uint32, len(in.schema.Dimensions))
		m := int64(1)
		for col, u := range colDim {
			if u == -1 {
				v, err := strconv.ParseInt(rec[col], 10, 64)
				if err != nil {
					return IngestMetrics{}, fmt.Errorf("rolap: CSV line %d: bad measure %q", line, rec[col])
				}
				m = v
				continue
			}
			var code uint32
			if in.dicts != nil {
				c, ok := in.CodeOf(in.schema.Dimensions[u].Name, rec[col])
				if !ok {
					return IngestMetrics{}, fmt.Errorf("rolap: CSV line %d: value %q not in dimension %q's dictionary (the schema is fixed at build time)",
						line, rec[col], in.schema.Dimensions[u].Name)
				}
				code = c
			} else {
				v, err := strconv.ParseUint(rec[col], 10, 32)
				if err != nil {
					return IngestMetrics{}, fmt.Errorf("rolap: CSV line %d: bad code %q for dimension %q", line, rec[col], in.schema.Dimensions[u].Name)
				}
				code = uint32(v)
			}
			if int(code) >= in.schema.Dimensions[u].Cardinality {
				return IngestMetrics{}, fmt.Errorf("rolap: CSV line %d: code %d out of range for dimension %q (cardinality %d)",
					line, code, in.schema.Dimensions[u].Name, in.schema.Dimensions[u].Cardinality)
			}
			row[u] = code
		}
		rows = append(rows, row)
		meas = append(meas, m)
	}
	return c.Ingest(rows, meas)
}

// Decode renders a dimension code as its original string. For inputs
// without dictionaries (NewInput), the numeric code is rendered.
func (in *Input) Decode(dim string, code uint32) string {
	for u, d := range in.schema.Dimensions {
		if d.Name == dim {
			if in.dicts != nil && int(code) < len(in.dicts[u]) {
				return in.dicts[u][code]
			}
			return strconv.FormatUint(uint64(code), 10)
		}
	}
	return strconv.FormatUint(uint64(code), 10)
}

// WriteCSV writes the view as a relational table: a header with the
// attribute names plus "measure", then one record per group, decoded
// through the input's dictionaries when available.
func (v *View) WriteCSV(w io.Writer, in *Input) error {
	cw := csv.NewWriter(w)
	// Sketch-served measures are estimates; say so in the header rather
	// than passing them off as exact totals.
	measName := "measure"
	if v.Estimated {
		measName = "measure_estimate"
	}
	header := append(append([]string{}, v.Attributes...), measName)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(v.Attributes)+1)
	for i := 0; i < v.Len(); i++ {
		key, m := v.Row(i)
		for c, attr := range v.Attributes {
			rec[c] = in.Decode(attr, key[c])
		}
		rec[len(rec)-1] = strconv.FormatInt(m, 10)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DimensionValues returns the distinct values of a dimension in code
// order (dictionary inputs only; nil otherwise), for building query
// UIs over the cube.
func (in *Input) DimensionValues(dim string) []string {
	if in.dicts == nil {
		return nil
	}
	for u, d := range in.schema.Dimensions {
		if d.Name == dim {
			return append([]string(nil), in.dicts[u]...)
		}
	}
	return nil
}

// CodeOf returns the dictionary code of a dimension value (dictionary
// inputs only), for building queries from user-facing strings.
func (in *Input) CodeOf(dim, value string) (uint32, bool) {
	if in.dicts == nil {
		return 0, false
	}
	for u, d := range in.schema.Dimensions {
		if d.Name == dim {
			// The dictionaries are stored code->string; invert lazily.
			for code, s := range in.dicts[u] {
				if s == value {
					return uint32(code), true
				}
			}
			return 0, false
		}
	}
	return 0, false
}

// sortedNames is a test helper exposed for deterministic assertions.
func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
