package rolap

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/ingest"
	"repro/internal/lattice"
	"repro/internal/record"
)

// IngestMetrics reports what one applied batch cost on the simulated
// machine. All simulated figures are increments over the cube's
// cumulative Metrics, which are updated in the same call.
type IngestMetrics struct {
	// Rows is the number of facts in the batch.
	Rows int64
	// SimSeconds is the simulated makespan the batch added.
	SimSeconds float64
	// IngestSeconds is the delta-build share of the makespan (local
	// aggregate, boundary-aligned sample sort, Pipesort over the
	// retained schedule trees); DeltaMergeSeconds is the share spent
	// merging the sorted deltas into the live view slices.
	IngestSeconds     float64
	DeltaMergeSeconds float64
	// BytesMoved is the batch's network volume; DeltaMergeBytes is the
	// merge phase's share of it.
	BytesMoved      int64
	DeltaMergeBytes int64
	// ChangedViews lists the views whose slices were replaced, each as
	// sorted dimension names, in deterministic order. Untouched views
	// keep their slices, cached results, and prefix indexes.
	ChangedViews [][]string
}

// FailedIngestError reports a batch killed by an injected processor
// crash (Cube.SetIngestFaults). The crash aborts every processor
// before any live view file is replaced, so the cube remains queryable
// at its exact pre-batch contents and the batch's rows stay buffered
// for a retry.
type FailedIngestError struct {
	// Processor is the crashed processor's rank.
	Processor int
	// Dimension is the dimension iteration at the crash point.
	Dimension int
	// Phase is the phase at the crash point ("ingest" or "deltamerge";
	// "" at a dimension boundary).
	Phase string
	// Superstep is the processor's collective superstep count at the
	// crash point.
	Superstep int64
}

func (e *FailedIngestError) Error() string {
	where := fmt.Sprintf("dimension %d", e.Dimension)
	if e.Phase != "" {
		where += ", phase " + e.Phase
	}
	return fmt.Sprintf("rolap: ingest failed: processor %d crashed (%s, superstep %d); cube unchanged, batch retained", e.Processor, where, e.Superstep)
}

// Ingest appends a batch of facts and applies it to the live cube as
// one incremental maintenance batch: the rows are built into a sorted
// delta cube with the same pipeline as the initial build and each
// per-view delta is merged into the live view slices in place — no
// rebuild. rows are dimension codes in schema order, measures the
// matching measure values (use 1 for COUNT semantics).
//
// Queries served concurrently see either the pre-batch or post-batch
// cube, never a mixture; server caches and prefix indexes for the
// changed views are invalidated atomically with the switch. On error
// the cube is unchanged and the rows stay buffered (Pending) for a
// retry.
func (c *Cube) Ingest(rows [][]uint32, measures []int64) (IngestMetrics, error) {
	if len(rows) != len(measures) {
		return IngestMetrics{}, fmt.Errorf("rolap: %d rows but %d measures", len(rows), len(measures))
	}
	if err := c.ingestable(); err != nil {
		return IngestMetrics{}, err
	}
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	for k, values := range rows {
		if err := c.appendPendingLocked(values, measures[k]); err != nil {
			return IngestMetrics{}, err
		}
	}
	return c.flushLocked()
}

// Flush applies any buffered facts (from a failed batch being retried,
// or an Ingester that has not reached its trigger) as one batch. With
// nothing buffered it is a no-op.
func (c *Cube) Flush() (IngestMetrics, error) {
	if err := c.ingestable(); err != nil {
		return IngestMetrics{}, err
	}
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	return c.flushLocked()
}

// Pending returns the number of buffered facts not yet applied.
func (c *Cube) Pending() int {
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	if c.pending == nil {
		return 0
	}
	return c.pending.Len()
}

// SetIngestFaults installs a one-shot fault-injection plan consumed by
// the next applied batch (for testing recovery: a crash mid-batch must
// leave the cube at its pre-batch contents). nil clears an installed
// plan.
func (c *Cube) SetIngestFaults(fp *FaultPlan) error {
	if err := c.ingestable(); err != nil {
		return err
	}
	plan := fp.internal()
	if plan != nil {
		if err := plan.Validate(c.machine.P()); err != nil {
			return fmt.Errorf("rolap: %w", err)
		}
	}
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	c.ingestFaults = plan
	return nil
}

// ingestable reports whether the cube accepts incremental batches.
func (c *Cube) ingestable() error {
	if c.machine == nil {
		return fmt.Errorf("rolap: cube has no cluster; rebuild to ingest")
	}
	if c.loadedV1 {
		return fmt.Errorf("rolap: cube loaded from a v1 snapshot (iceberg status unrecorded); re-save or rebuild to ingest")
	}
	if c.opts.MinSupport > 0 {
		return fmt.Errorf("rolap: iceberg cubes cannot be maintained incrementally (pruned groups are unrecoverable); rebuild instead")
	}
	return nil
}

// appendPendingLocked validates one fact like Input.AddRow and buffers
// it in internal dimension order. Caller holds ingMu.
func (c *Cube) appendPendingLocked(values []uint32, measure int64) error {
	in := c.in
	if len(values) != len(in.schema.Dimensions) {
		return fmt.Errorf("rolap: row has %d values, schema has %d dimensions",
			len(values), len(in.schema.Dimensions))
	}
	if c.sketch != nil && measure < 0 {
		return fmt.Errorf("rolap: negative measure %d: holistic aggregates require non-negative measures (negative values are reserved for sketch handles)", measure)
	}
	row := make([]uint32, len(values))
	for i, u := range in.perm {
		v := values[u]
		if int(v) >= in.schema.Dimensions[u].Cardinality {
			return fmt.Errorf("rolap: value %d out of range for dimension %q (cardinality %d)",
				v, in.schema.Dimensions[u].Name, in.schema.Dimensions[u].Cardinality)
		}
		row[i] = v
	}
	if c.pending == nil {
		c.pending = record.New(len(values), 0)
	}
	c.pending.Append(row, measure)
	return nil
}

// flushLocked runs the buffered facts through the delta build + merge
// on the simulated machine. Caller holds ingMu.
func (c *Cube) flushLocked() (_ IngestMetrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rolap: internal failure: %v", r)
		}
	}()
	if c.pending == nil || c.pending.Len() == 0 {
		return IngestMetrics{}, nil
	}
	batch := c.pending
	d := len(c.in.schema.Dimensions)
	cards := make([]int, d)
	for i := 0; i < d; i++ {
		cards[i] = c.in.schema.Dimensions[c.in.perm[i]].Cardinality
	}
	cfg := ingest.Config{
		D:           d,
		Selected:    c.views,
		Orders:      c.orders,
		Trees:       c.trees,
		Gamma:       c.opts.Gamma,
		MergeGamma:  c.opts.MergeGamma,
		Agg:         c.op,
		Cards:       cards,
		OverlapComm: c.opts.OverlapComm,
		Faults:      c.ingestFaults,
		Sketch:      c.sketch,
	}
	// The plan is one-shot: a retry after an injected crash must not
	// re-fire the same crash.
	c.ingestFaults = nil

	// The machine work and the query-side invalidation both run under
	// the engine's maintenance lock, so a concurrent query executes
	// either entirely before the batch (old slices, old versions) or
	// entirely after (new slices, new versions) — never a mixture.
	var res ingest.Result
	err = c.engine.Maintain(func() error {
		r, err := ingest.IngestBatch(c.machine, batch, cfg)
		if err != nil {
			return err
		}
		res = r
		for v := range r.Changed {
			c.engine.InvalidateView(v, r.ViewRows[v])
		}
		return nil
	})
	if err != nil {
		var crash *faults.CrashError
		if errors.As(err, &crash) {
			return IngestMetrics{}, &FailedIngestError{
				Processor: crash.Rank,
				Dimension: crash.Dimension,
				Phase:     crash.Phase,
				Superstep: crash.Superstep,
			}
		}
		return IngestMetrics{}, err
	}
	c.pending = record.New(batch.D, 0)
	c.applyResult(res)
	c.notifyCommitLocked(batch)

	im := IngestMetrics{
		Rows:              res.Rows,
		SimSeconds:        res.SimSeconds,
		IngestSeconds:     res.PhaseSeconds[ingest.PhaseIngest],
		DeltaMergeSeconds: res.DeltaMergeSeconds,
		BytesMoved:        res.BytesMoved,
		DeltaMergeBytes:   res.DeltaMergeBytes,
	}
	for v := range res.Changed {
		names := c.in.namesOf(lattice.Canonical(v))
		sort.Strings(names)
		im.ChangedViews = append(im.ChangedViews, names)
	}
	sort.Slice(im.ChangedViews, func(i, j int) bool {
		if len(im.ChangedViews[i]) != len(im.ChangedViews[j]) {
			return len(im.ChangedViews[i]) < len(im.ChangedViews[j])
		}
		return fmt.Sprint(im.ChangedViews[i]) < fmt.Sprint(im.ChangedViews[j])
	})
	return im, nil
}

// addCommitHookLocked registers a commit hook and returns its removal
// id. Caller holds ingMu.
func (c *Cube) addCommitHookLocked(fn func(rows [][]uint32, meas []int64)) int {
	if c.commitHooks == nil {
		c.commitHooks = map[int]func(rows [][]uint32, meas []int64){}
	}
	id := c.nextHookID
	c.nextHookID++
	c.commitHooks[id] = fn
	return id
}

// removeCommitHook deregisters a commit hook by id.
func (c *Cube) removeCommitHook(id int) {
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	delete(c.commitHooks, id)
}

// notifyCommitLocked delivers the just-applied batch to the registered
// commit hooks. Rows are independent copies in internal dimension
// order — exactly what the leader's delta build consumed, so a replica
// applying them reproduces the leader's post-batch state bit for bit.
// Caller holds ingMu.
func (c *Cube) notifyCommitLocked(batch *record.Table) {
	if len(c.commitHooks) == 0 {
		return
	}
	rows := make([][]uint32, batch.Len())
	meas := make([]int64, batch.Len())
	for i := range rows {
		rows[i] = batch.RowCopy(i)
		meas[i] = batch.Meas(i)
	}
	ids := make([]int, 0, len(c.commitHooks))
	for id := range c.commitHooks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c.commitHooks[id](rows, meas)
	}
}

// applyShippedBatch applies one leader-committed batch to a replica
// cube. Rows are already in internal dimension order and were
// validated on the leader. The replica's pending buffer must be empty
// — replicas never buffer facts of their own — so the flush applies
// exactly this batch and the replica's views and version counters
// advance exactly as the leader's did for the same batch.
func (c *Cube) applyShippedBatch(rows [][]uint32, meas []int64) error {
	if len(rows) != len(meas) {
		return fmt.Errorf("rolap: %d rows but %d measures", len(rows), len(meas))
	}
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	if c.pending != nil && c.pending.Len() > 0 {
		return fmt.Errorf("rolap: replica has %d buffered facts; shipped batches must apply alone", c.pending.Len())
	}
	if c.pending == nil {
		c.pending = record.New(len(c.in.schema.Dimensions), 0)
	}
	for i, row := range rows {
		c.pending.Append(row, meas[i])
	}
	_, err := c.flushLocked()
	return err
}

// applyResult folds one batch's costs into the cube's cumulative
// public metrics.
func (c *Cube) applyResult(res ingest.Result) {
	c.metMu.Lock()
	defer c.metMu.Unlock()
	m := &c.metrics
	m.IngestedRows += res.Rows
	m.IngestBatches++
	m.IngestSeconds += res.PhaseSeconds[ingest.PhaseIngest]
	m.DeltaMergeSeconds += res.DeltaMergeSeconds
	m.DeltaMergeBytes += res.DeltaMergeBytes
	m.SimSeconds += res.SimSeconds
	m.BytesMoved += res.BytesMoved
	if m.PhaseSeconds == nil {
		m.PhaseSeconds = map[string]float64{}
	}
	for ph, s := range res.PhaseSeconds {
		m.PhaseSeconds[ph] += s
	}
	if m.ViewRows == nil {
		m.ViewRows = map[string]int64{}
	}
	for v, rows := range res.ViewRows {
		m.ViewRows[viewName(c.in, v)] = rows
	}
	m.OutputRows, m.OutputBytes = 0, 0
	for v, o := range c.orders {
		rows := m.ViewRows[viewName(c.in, v)]
		m.OutputRows += rows
		m.OutputBytes += rows * int64(record.RowBytes(len(o)))
	}
}

// IngesterOptions sets an Ingester's automatic flush triggers. A batch
// is applied when the buffer reaches MaxRows facts or MaxBytes of
// buffered fact data, whichever fires first; a zero field disables
// that trigger. With both zero, MaxRows defaults to 4096.
type IngesterOptions struct {
	MaxRows  int
	MaxBytes int64
}

// Ingester is a buffering append front end over Cube.Ingest: facts
// accumulate until a size trigger fires, then flush as one incremental
// batch. Amortizing the per-batch delta build over more rows is the
// whole economy of incremental maintenance — see the ingest benchmark.
// An Ingester is safe for concurrent use.
type Ingester struct {
	c    *Cube
	opts IngesterOptions
}

// NewIngester returns a buffering appender over the cube.
func (c *Cube) NewIngester(opts IngesterOptions) (*Ingester, error) {
	if err := c.ingestable(); err != nil {
		return nil, err
	}
	if opts.MaxRows < 0 || opts.MaxBytes < 0 {
		return nil, fmt.Errorf("rolap: negative ingester trigger")
	}
	if opts.MaxRows == 0 && opts.MaxBytes == 0 {
		opts.MaxRows = 4096
	}
	return &Ingester{c: c, opts: opts}, nil
}

// Add buffers one fact (values in schema order). When the buffer
// reaches a trigger the batch is applied and its metrics returned with
// flushed=true; otherwise the zero IngestMetrics and flushed=false.
// A failed flush keeps the buffer for retry (Flush or the next Add).
func (g *Ingester) Add(values []uint32, measure int64) (met IngestMetrics, flushed bool, err error) {
	c := g.c
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	if err := c.appendPendingLocked(values, measure); err != nil {
		return IngestMetrics{}, false, err
	}
	n := c.pending.Len()
	if (g.opts.MaxRows > 0 && n >= g.opts.MaxRows) ||
		(g.opts.MaxBytes > 0 && int64(n)*int64(record.RowBytes(c.pending.D)) >= g.opts.MaxBytes) {
		met, err = c.flushLocked()
		return met, err == nil, err
	}
	return IngestMetrics{}, false, nil
}

// Flush applies the buffered facts regardless of the triggers.
func (g *Ingester) Flush() (IngestMetrics, error) {
	return g.c.Flush()
}

// Pending returns the number of buffered facts.
func (g *Ingester) Pending() int { return g.c.Pending() }
