// Retail: a realistic partial-cube deployment. A retail chain's fact
// table has six dimensions, but its dashboards only ever group by at
// most three of them — exactly the scenario the paper's §3 motivates
// for partial cubes ("the user often knows that some views will not be
// required"). We materialize just the needed views, compare the cost
// against the full cube, and answer dashboard queries, including one
// that falls back to the smallest materialized superset view.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rolap "repro"
)

func main() {
	schema := rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "store", Cardinality: 120},
		{Name: "product", Cardinality: 200},
		{Name: "supplier", Cardinality: 45},
		{Name: "month", Cardinality: 24},
		{Name: "channel", Cardinality: 3},
		{Name: "promo", Cardinality: 2},
	}}

	in, err := rolap.NewInput(schema)
	if err != nil {
		log.Fatal(err)
	}
	loadFacts(in, 120_000)

	// The dashboards need: per-store revenue over time, product
	// performance by channel, promo effectiveness, and supplier
	// roll-ups. 9 views instead of 2^6 = 64.
	dashboards := [][]string{
		{"store", "month"},
		{"store"},
		{"month"},
		{"product", "channel"},
		{"product"},
		{"promo", "month"},
		{"supplier", "product"},
		{"supplier"},
		{}, // grand total
	}

	partial, err := rolap.Build(in, rolap.Options{
		Processors:    8,
		SelectedViews: dashboards,
	})
	if err != nil {
		log.Fatal(err)
	}
	full, err := rolap.Build(in, rolap.Options{Processors: 8})
	if err != nil {
		log.Fatal(err)
	}

	pm, fm := partial.Metrics(), full.Metrics()
	fmt.Printf("partial cube: %2d views, %9d rows, %7.1f simulated s\n",
		len(partial.Views()), pm.OutputRows, pm.SimSeconds)
	fmt.Printf("full cube:    %2d views, %9d rows, %7.1f simulated s\n",
		len(full.Views()), fm.OutputRows, fm.SimSeconds)
	fmt.Printf("savings: %.1fx fewer rows, %.1fx faster build\n\n",
		float64(fm.OutputRows)/float64(pm.OutputRows), fm.SimSeconds/pm.SimSeconds)

	// Dashboard queries against the partial cube.
	rev, _ := partial.Aggregate([]string{"store", "month"}, []uint32{17, 6})
	fmt.Printf("store 17, month 6 revenue:      %d\n", rev)

	promo, _ := partial.Aggregate([]string{"promo", "month"}, []uint32{1, 6})
	noPromo, _ := partial.Aggregate([]string{"promo", "month"}, []uint32{0, 6})
	fmt.Printf("month 6 promo vs non-promo:     %d vs %d\n", promo, noPromo)

	// "channel" alone was not selected: the library answers it from
	// the smallest materialized superset (product,channel).
	web, err := partial.Aggregate([]string{"channel"}, []uint32{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel 2 revenue (fallback):   %d\n", web)

	// Cross-check the fallback result against the full cube.
	webFull, _ := full.Aggregate([]string{"channel"}, []uint32{2})
	if web != webFull {
		log.Fatalf("fallback disagrees with full cube: %d vs %d", web, webFull)
	}
	fmt.Println("fallback verified against the full cube")
}

// loadFacts fills the table with plausibly skewed retail data: a few
// products and stores dominate, December spikes.
func loadFacts(in *rolap.Input, n int) {
	rng := rand.New(rand.NewSource(7))
	skewed := func(card int) uint32 {
		// Zipf-ish: low codes far more likely.
		f := rng.Float64()
		f = f * f * f
		return uint32(f * float64(card))
	}
	for i := 0; i < n; i++ {
		month := uint32(rng.Intn(24))
		if rng.Intn(8) == 0 {
			month = 11 // holiday spike
		}
		err := in.AddRow([]uint32{
			skewed(120),
			skewed(200),
			uint32(rng.Intn(45)),
			month,
			uint32(rng.Intn(3)),
			uint32(rng.Intn(2)),
		}, int64(rng.Intn(20000)))
		if err != nil {
			log.Fatal(err)
		}
	}
}
