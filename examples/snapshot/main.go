// Snapshot: the precompute-then-serve deployment the paper motivates.
// A nightly job ingests the day's fact table from CSV, builds the cube
// on the simulated cluster, and writes a snapshot; a query server
// loads the snapshot (no cluster, no rebuild) and answers OLAP queries
// from the materialized views.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	rolap "repro"
)

func main() {
	// --- Nightly build job ---------------------------------------
	facts := synthesizeCSV(30_000)
	in, err := rolap.LoadCSV(strings.NewReader(facts), rolap.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cube, err := rolap.Build(in, rolap.Options{Processors: 8})
	if err != nil {
		log.Fatal(err)
	}
	met := cube.Metrics()
	fmt.Printf("nightly build: %d views, %d rows, %.1f simulated s on %d processors\n",
		len(cube.Views()), met.OutputRows, met.SimSeconds, met.Processors)

	snap, err := os.CreateTemp("", "cube-*.bin")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(snap.Name())
	if err := cube.Save(snap); err != nil {
		log.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(snap.Name())
	fmt.Printf("snapshot: %s (%.1f MB)\n", snap.Name(), float64(info.Size())/1e6)

	// --- Query server --------------------------------------------
	f, err := os.Open(snap.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	served, err := rolap.LoadCube(f)
	if err != nil {
		log.Fatal(err)
	}

	region, _ := in.CodeOf("region", "emea")
	total, err := served.Aggregate([]string{"region"}, []uint32{region})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EMEA revenue:         %d\n", total)

	// Filtered roll-up straight off the snapshot.
	promo, _ := in.CodeOf("tier", "gold")
	vw, err := served.GroupBy([]string{"region"}, map[string]uint32{"tier": promo})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gold-tier revenue by region:")
	var buf bytes.Buffer
	if err := vw.WriteCSV(&buf, in); err != nil {
		log.Fatal(err)
	}
	fmt.Print(buf.String())
}

// synthesizeCSV fabricates a deterministic fact table.
func synthesizeCSV(n int) string {
	regions := []string{"emea", "amer", "apac"}
	tiers := []string{"gold", "silver", "bronze"}
	var sb strings.Builder
	sb.WriteString("region,tier,product,measure\n")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%s,%s,p%03d,%d\n",
			regions[rng.Intn(len(regions))],
			tiers[rng.Intn(len(tiers))],
			rng.Intn(150),
			rng.Intn(500))
	}
	return sb.String()
}
