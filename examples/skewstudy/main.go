// Skewstudy: reproduce the paper's §4.3 observation interactively —
// data skew shrinks the cube (data reduction) and shifts the
// communication profile of the merge phase. For a Zipf-distributed
// fact table at increasing skew levels, the cube gets smaller and
// faster, while the data communicated during Merge–Partitions first
// rises (moderate skew unbalances the partitions) and then collapses
// (extreme skew leaves little data at all).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	rolap "repro"
)

func main() {
	fmt.Println("skew  |  cube rows | sim seconds | merge comm MB | reduction")
	fmt.Println("------+------------+-------------+---------------+----------")
	n := 80_000
	var baseRows int64
	for _, alpha := range []float64{0, 0.5, 1, 1.5, 2, 3} {
		met := buildAt(alpha, n)
		if alpha == 0 {
			baseRows = met.OutputRows
		}
		fmt.Printf("%4.1f  | %10d | %11.1f | %13.1f | %8.2fx\n",
			alpha, met.OutputRows, met.SimSeconds,
			float64(met.MergeBytes)/1e6,
			float64(baseRows)/float64(met.OutputRows))
	}
}

func buildAt(alpha float64, n int) rolap.Metrics {
	schema := rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "d0", Cardinality: 256},
		{Name: "d1", Cardinality: 128},
		{Name: "d2", Cardinality: 64},
		{Name: "d3", Cardinality: 32},
		{Name: "d4", Cardinality: 16},
		{Name: "d5", Cardinality: 8},
	}}
	in, err := rolap.NewInput(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	cards := []int{256, 128, 64, 32, 16, 8}
	for i := 0; i < n; i++ {
		row := make([]uint32, len(cards))
		for j, c := range cards {
			row[j] = zipf(rng, c, alpha)
		}
		if err := in.AddRow(row, 1); err != nil {
			log.Fatal(err)
		}
	}
	cube, err := rolap.Build(in, rolap.Options{Processors: 16})
	if err != nil {
		log.Fatal(err)
	}
	return cube.Metrics()
}

// zipf draws from {0..card-1} with P(k) proportional to 1/(k+1)^alpha
// by inverse-CDF sampling.
func zipf(rng *rand.Rand, card int, alpha float64) uint32 {
	if alpha == 0 {
		return uint32(rng.Intn(card))
	}
	// Unnormalized CDF walk; card is small so linear is fine.
	u := rng.Float64()
	var total float64
	for k := 0; k < card; k++ {
		total += math.Pow(float64(k+1), -alpha)
	}
	acc := 0.0
	for k := 0; k < card; k++ {
		acc += math.Pow(float64(k+1), -alpha) / total
		if u <= acc {
			return uint32(k)
		}
	}
	return uint32(card - 1)
}
