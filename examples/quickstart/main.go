// Quickstart: build a full data cube over a small fact table on a
// simulated 4-processor shared-nothing cluster and run point queries
// against the materialized views.
package main

import (
	"fmt"
	"log"
	"math/rand"

	rolap "repro"
)

func main() {
	// A fact table: sales events over three dimensions. Dimension
	// values are dense integer codes in [0, cardinality).
	schema := rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "store", Cardinality: 64},
		{Name: "product", Cardinality: 32},
		{Name: "month", Cardinality: 12},
	}}
	in, err := rolap.NewInput(schema)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50_000; i++ {
		err := in.AddRow([]uint32{
			uint32(rng.Intn(64)),
			uint32(rng.Intn(32)),
			uint32(rng.Intn(12)),
		}, int64(rng.Intn(500))) // revenue in cents
		if err != nil {
			log.Fatal(err)
		}
	}

	// Build the full cube: all 2^3 = 8 group-bys, distributed over 4
	// simulated processors with private disks.
	cube, err := rolap.Build(in, rolap.Options{Processors: 4})
	if err != nil {
		log.Fatal(err)
	}

	met := cube.Metrics()
	fmt.Printf("built %d views (%d rows) in %.2f simulated seconds on %d processors\n",
		len(cube.Views()), met.OutputRows, met.SimSeconds, met.Processors)

	// Point queries. Each hits the exact materialized view.
	total, _ := cube.Aggregate(nil, nil)
	fmt.Printf("total revenue:              %d\n", total)

	byStore, _ := cube.Aggregate([]string{"store"}, []uint32{7})
	fmt.Printf("revenue of store 7:         %d\n", byStore)

	byPair, _ := cube.Aggregate([]string{"store", "month"}, []uint32{7, 11})
	fmt.Printf("store 7 in December:        %d\n", byPair)

	// Scan a whole view.
	vw, err := cube.View([]string{"month"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monthly totals (%v):\n", vw.Attributes)
	for i := 0; i < vw.Len(); i++ {
		key, revenue := vw.Row(i)
		fmt.Printf("  month %2d: %d\n", key[0], revenue)
	}
}
