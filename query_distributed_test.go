package rolap

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
)

// TestDistributedGroupByMatchesGatherOracle is the subsystem's
// correctness oracle: on randomized schemas, data, filters, and
// machine sizes, the distributed scatter–gather path must return
// byte-identical results to the original gather-and-scan path.
func TestDistributedGroupByMatchesGatherOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	aggs := []Aggregate{Sum, Min, Max}
	for trial := 0; trial < 25; trial++ {
		d := 3 + rng.Intn(3)
		dims := make([]Dimension, d)
		for i := range dims {
			dims[i] = Dimension{Name: fmt.Sprintf("d%d", i), Cardinality: 2 + rng.Intn(29)}
		}
		in, err := NewInput(Schema{Dimensions: dims})
		if err != nil {
			t.Fatal(err)
		}
		n := 300 + rng.Intn(1200)
		row := make([]uint32, d)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = uint32(rng.Intn(dims[j].Cardinality))
			}
			if err := in.AddRow(row, int64(rng.Intn(200)-50)); err != nil {
				t.Fatal(err)
			}
		}
		cube, err := Build(in, Options{
			Processors: 1 + rng.Intn(5),
			Aggregate:  aggs[rng.Intn(len(aggs))],
		})
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}

		// Random group dims + equality filters over disjoint dims.
		perm := rng.Perm(d)
		ng := rng.Intn(d + 1)
		group := make([]string, 0, ng)
		for _, u := range perm[:ng] {
			group = append(group, dims[u].Name)
		}
		filters := map[string]uint32{}
		for _, u := range perm[ng:] {
			if rng.Intn(2) == 0 {
				filters[dims[u].Name] = uint32(rng.Intn(dims[u].Cardinality))
			}
		}
		// Filters may also restrict grouped dimensions ("group by X
		// where X = v"); both paths must agree on the restriction too.
		for _, u := range perm[:ng] {
			if rng.Intn(4) == 0 {
				filters[dims[u].Name] = uint32(rng.Intn(dims[u].Cardinality))
			}
		}

		got, err := cube.GroupBy(group, filters)
		if err != nil {
			t.Fatalf("trial %d: distributed: %v", trial, err)
		}
		want, err := cube.gatherGroupBy(group, filters, defaultPercentile)
		if err != nil {
			t.Fatalf("trial %d: gather: %v", trial, err)
		}
		if !record.Equal(got.rows, want.rows) {
			t.Fatalf("trial %d: group %v filters %v: distributed and gathered results differ\ngot  %v\nwant %v",
				trial, group, filters, got.rows, want.rows)
		}
		for k := range got.Attributes {
			if got.Attributes[k] != want.Attributes[k] {
				t.Fatalf("trial %d: attribute mismatch %v vs %v", trial, got.Attributes, want.Attributes)
			}
		}

		// And a random range aggregate over 1..d dims.
		nr := 1 + rng.Intn(d)
		rdims := make([]string, nr)
		lo := make([]uint32, nr)
		hi := make([]uint32, nr)
		for k, u := range rng.Perm(d)[:nr] {
			rdims[k] = dims[u].Name
			a := uint32(rng.Intn(dims[u].Cardinality))
			b := uint32(rng.Intn(dims[u].Cardinality))
			if a > b {
				a, b = b, a
			}
			lo[k], hi[k] = a, b
		}
		gotR, err := cube.RangeAggregate(rdims, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: distributed range: %v", trial, err)
		}
		wantR, err := cube.gatherRangeAggregate(rdims, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: gather range: %v", trial, err)
		}
		if gotR != wantR {
			t.Fatalf("trial %d: range %v %v..%v: distributed %d, gathered %d",
				trial, rdims, lo, hi, gotR, wantR)
		}
	}
}

// TestGroupByEmptyAfterFilter covers a filter that matches no facts:
// the result must be an empty view, not an error.
func TestGroupByEmptyAfterFilter(t *testing.T) {
	in, _ := NewInput(testSchema())
	// Only stores 0..4 appear; store 39 is in the dictionary but unused.
	for i := 0; i < 50; i++ {
		if err := in.AddRow([]uint32{uint32(i % 12), uint32(i % 5), uint32(i % 25), uint32(i % 3)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cube.GroupBy([]string{"month"}, map[string]uint32{"store": 39})
	if err != nil {
		t.Fatal(err)
	}
	if vw.Len() != 0 {
		t.Fatalf("filter on unused store matched %d groups", vw.Len())
	}
}

// TestGroupByGrandTotal covers the zero-dimension group-by: one row,
// empty key, the aggregate of everything.
func TestGroupByGrandTotal(t *testing.T) {
	in, oracle := loadRandom(t, 400, 21)
	cube, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cube.GroupBy([]string{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vw.Len() != 1 {
		t.Fatalf("grand total has %d rows, want 1", vw.Len())
	}
	if got, want := vw.rows.Meas(0), oracle(nil, nil); got != want {
		t.Fatalf("grand total = %d, want %d", got, want)
	}
	if len(vw.Attributes) != 0 {
		t.Fatalf("grand total has attributes %v", vw.Attributes)
	}
}

// TestGroupByFilterValueAbsentFromDictionary covers a filter code
// beyond the dimension's cardinality: no dictionary entry can match,
// so the result is empty — not an error (the code space is dense but
// queries are not required to stay inside it).
func TestGroupByFilterValueAbsentFromDictionary(t *testing.T) {
	in, _ := loadRandom(t, 200, 5)
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cube.GroupBy([]string{"product"}, map[string]uint32{"channel": 99})
	if err != nil {
		t.Fatal(err)
	}
	if vw.Len() != 0 {
		t.Fatalf("out-of-dictionary filter matched %d groups", vw.Len())
	}
}

// TestSmallestSupersetDeterministicTieBreak pins the planner's
// tie-breaking: two candidate views with identical row counts must
// resolve to the same view on every call, regardless of map iteration
// order.
func TestSmallestSupersetDeterministicTieBreak(t *testing.T) {
	in, err := NewInput(Schema{Dimensions: []Dimension{
		{Name: "a", Cardinality: 4},
		{Name: "b", Cardinality: 1},
		{Name: "c", Cardinality: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := in.AddRow([]uint32{uint32(i % 4), 0, 0}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Materialize only {a,b} and {a,c}: both roll up {a} with identical
	// row counts (b and c have cardinality 1).
	cube, err := Build(in, Options{
		Processors:    2,
		SelectedViews: [][]string{{"a", "b"}, {"a", "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	need, err := in.viewOf([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	first, err := cube.smallestSuperset(need)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, err := cube.smallestSuperset(need)
		if err != nil {
			t.Fatal(err)
		}
		if v != first {
			t.Fatalf("iteration %d: picked %v after first picking %v", i, v, first)
		}
	}
	// The rule is "smaller ViewID wins": with a=0, b=1, c=2 internally,
	// {a,b} (bitmask 0b011) must beat {a,c} (0b101).
	ab, _ := in.viewOf([]string{"a", "b"})
	if first != ab {
		t.Fatalf("tie broke to %v, want %v ({a,b})", first, ab)
	}
}
