// Package rolap is a parallel ROLAP data-cube construction library for
// shared-nothing clusters, reproducing Chen, Dehne, Eavis and
// Rau-Chaplin, "Parallel ROLAP Data Cube Construction On Shared-Nothing
// Multiprocessors" (IPDPS 2003).
//
// The library materializes all 2^d group-by views of a d-dimensional
// fact table (or a selected subset — a partial cube) as relational
// tables distributed over the local disks of a simulated shared-nothing
// multiprocessor. The algorithm partitions the lattice into
// Di-partitions, globally sorts each partition root with an adaptive
// parallel sample sort, builds every partition locally with Pipesort,
// and merges the per-processor view slices with the three-case
// Merge–Partitions procedure. Options.OverlapComm additionally enables
// the paper's §4.1 communication–computation overlap, masking part of
// the h-relation cost behind the local work that follows each
// exchange. See DESIGN.md for the full system map.
//
// Quick start:
//
//	schema := rolap.Schema{Dimensions: []rolap.Dimension{
//		{Name: "store", Cardinality: 64},
//		{Name: "product", Cardinality: 32},
//		{Name: "month", Cardinality: 12},
//	}}
//	in, _ := rolap.NewInput(schema)
//	in.AddRow([]uint32{3, 17, 5}, 120) // store 3 sold product 17 in June for $120
//	cube, _ := rolap.Build(in, rolap.Options{Processors: 4})
//	total, _ := cube.Aggregate([]string{"store", "month"}, []uint32{3, 5})
package rolap

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/partialcube"
	"repro/internal/queryengine"
	"repro/internal/record"
	"repro/internal/sketch"
)

// Dimension is one dimension of the fact table. Values of the
// dimension must be dense codes in [0, Cardinality).
type Dimension struct {
	Name        string
	Cardinality int
}

// Schema describes the fact table's dimensions, in the user's
// preferred order. Internally the library re-orders dimensions by
// decreasing cardinality (the paper's w.l.o.g. assumption); all public
// APIs speak in dimension names, so callers never see the internal
// order.
type Schema struct {
	Dimensions []Dimension
}

// validate checks the schema and returns the canonical permutation:
// perm[i] is the user-dimension index of internal dimension i.
func (s Schema) validate() ([]int, error) {
	d := len(s.Dimensions)
	if d < 1 || d > lattice.MaxDims {
		return nil, fmt.Errorf("rolap: schema needs 1..%d dimensions, has %d", lattice.MaxDims, d)
	}
	seen := map[string]bool{}
	for _, dim := range s.Dimensions {
		if dim.Name == "" {
			return nil, fmt.Errorf("rolap: dimension with empty name")
		}
		if dim.Cardinality < 1 {
			return nil, fmt.Errorf("rolap: dimension %q has cardinality %d", dim.Name, dim.Cardinality)
		}
		if seen[dim.Name] {
			return nil, fmt.Errorf("rolap: duplicate dimension %q", dim.Name)
		}
		seen[dim.Name] = true
	}
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return s.Dimensions[perm[a]].Cardinality > s.Dimensions[perm[b]].Cardinality
	})
	return perm, nil
}

// Input is a fact table being loaded. Rows are given in schema order;
// the measure is any additive int64 (use 1 for COUNT semantics).
type Input struct {
	schema Schema
	perm   []int // internal dim i -> user dim perm[i]
	inv    []int // user dim u -> internal dim inv[u]
	table  *record.Table
	// dicts, when non-nil, maps each user dimension's codes back to
	// the original string values (populated by LoadCSV).
	dicts [][]string
}

// NewInput returns an empty fact table for the schema.
func NewInput(schema Schema) (*Input, error) {
	perm, err := schema.validate()
	if err != nil {
		return nil, err
	}
	inv := make([]int, len(perm))
	for i, u := range perm {
		inv[u] = i
	}
	return &Input{
		schema: schema,
		perm:   perm,
		inv:    inv,
		table:  record.New(len(schema.Dimensions), 0),
	}, nil
}

// AddRow appends one fact. values are dimension codes in schema order.
func (in *Input) AddRow(values []uint32, measure int64) error {
	if len(values) != len(in.schema.Dimensions) {
		return fmt.Errorf("rolap: row has %d values, schema has %d dimensions",
			len(values), len(in.schema.Dimensions))
	}
	row := make([]uint32, len(values))
	for i, u := range in.perm {
		v := values[u]
		if int(v) >= in.schema.Dimensions[u].Cardinality {
			return fmt.Errorf("rolap: value %d out of range for dimension %q (cardinality %d)",
				v, in.schema.Dimensions[u].Name, in.schema.Dimensions[u].Cardinality)
		}
		row[i] = v
	}
	in.table.Append(row, measure)
	return nil
}

// Len returns the number of loaded facts.
func (in *Input) Len() int { return in.table.Len() }

// Schema returns the input's schema.
func (in *Input) Schema() Schema { return in.schema }

// Aggregate selects how measures of equal group keys combine.
type Aggregate int

const (
	// Sum adds measures (COUNT is Sum over unit measures; AVG is a Sum
	// cube divided by a COUNT cube).
	Sum Aggregate = iota
	// Min keeps the smallest measure per group.
	Min
	// Max keeps the largest measure per group.
	Max
	// CountDistinct estimates the number of distinct measure values per
	// group with a mergeable sketch (exact below the sketch's exact
	// threshold, Flajolet–Martin beyond it). Holistic: measures must be
	// non-negative, and query results are estimates.
	CountDistinct
	// Quantile tracks the distribution of measure values per group with
	// a mergeable log-quantized histogram; GroupByPercentile (and
	// Query.Percentile) pick the rank to report. Holistic: measures
	// must be non-negative, and query results are estimates.
	Quantile
)

func (a Aggregate) op() record.AggOp {
	switch a {
	case Min:
		return record.OpMin
	case Max:
		return record.OpMax
	case CountDistinct:
		return record.OpDistinct
	case Quantile:
		return record.OpQuantile
	default:
		return record.OpSum
	}
}

// Holistic reports whether the aggregate needs per-group sketch state
// (its results are estimates, not exact values).
func (a Aggregate) Holistic() bool { return a.op().Holistic() }

// Holistic reports whether the cube's aggregate is sketch-backed
// (CountDistinct or Quantile): every measure it serves is an estimate.
func (c *Cube) Holistic() bool { return c.op.Holistic() }

// sketchKind maps a holistic aggregate to its sketch type.
func (a Aggregate) sketchKind() sketch.Kind {
	if a == Quantile {
		return sketch.KindQuantile
	}
	return sketch.KindDistinct
}

// Hardware selects the cost model of the simulated cluster.
type Hardware int

const (
	// Beowulf2003 models the paper's platform: 1.8 GHz Xeons, IDE
	// disks, 100 Mb/s Ethernet.
	Beowulf2003 Hardware = iota
	// ModernCluster models NVMe storage and 10 GbE.
	ModernCluster
)

// Options configures a cube build.
type Options struct {
	// Processors is the shared-nothing machine size (default 4).
	Processors int
	// SelectedViews restricts materialization to the named views (each
	// a set of dimension names); nil builds the full cube. The empty
	// set (the grand total) is written as an empty name list.
	SelectedViews [][]string
	// Gamma is the sample-sort rebalance threshold (default 1%).
	Gamma float64
	// MergeGamma is the merge Case 2/3 threshold (default 3%).
	MergeGamma float64
	// LocalScheduleTrees switches to per-processor schedule trees (the
	// paper's slower baseline; for experiments).
	LocalScheduleTrees bool
	// GreedyPartialPlanner switches the partial-cube planner from
	// pruned-Pipesort to the direct greedy lattice planner.
	GreedyPartialPlanner bool
	// FlajoletMartin switches view-size estimation from the Cardenas
	// formula to Flajolet–Martin sketches.
	FlajoletMartin bool
	// Aggregate selects the measure combiner (default Sum).
	Aggregate Aggregate
	// SketchArenaBudget bounds the decoded-sketch arena of a holistic
	// build in bytes (default 1 MiB): sealed per-group sketches beyond
	// the budget are spilled to their serialized form and reloaded on
	// demand, so builds whose total sketch state exceeds memory still
	// complete in bounded passes. Ignored for algebraic aggregates.
	SketchArenaBudget int
	// SketchExactThreshold overrides the distinct sketch's exact-mode
	// cutoff and SketchMaxBuckets the quantile sketch's bucket bound
	// (defaults sketch.DefaultExactThreshold / DefaultMaxBuckets; for
	// experiments).
	SketchExactThreshold int
	SketchMaxBuckets     int
	// MinSupport, when > 0, builds an iceberg cube: only groups whose
	// aggregate reaches the threshold are materialized.
	MinSupport int64
	// Hardware selects the simulated cluster's cost model.
	Hardware Hardware
	// OverlapComm enables the paper's §4.1 communication–computation
	// overlap: the bulk h-relations of the partition and merge phases
	// are posted asynchronously and run concurrently with the local
	// sort/merge/disk work that follows, with the unmasked remainder
	// settled at the next barrier. The build's result is bit-identical;
	// only the simulated timing changes, by at most the build's
	// Metrics.MaskableCommFraction. Metrics.OverlappedCommSeconds
	// reports how much communication was actually masked.
	OverlapComm bool
	// Faults, when non-nil, injects deterministic failures into the
	// build: crashes, dropped/corrupted h-relation payloads, and
	// stragglers. An unrecoverable crash returns a *FailedBuildError.
	Faults *FaultPlan
	// Checkpoint enables per-dimension checkpointing so a crashed
	// build continues degraded on the surviving processors instead of
	// failing. Checkpoint I/O and recovery time are charged on the
	// simulated clock and reported in Metrics.
	Checkpoint Checkpoint
}

// Cube is a materialized (partial) data cube distributed over the
// processors of a shared-nothing machine.
type Cube struct {
	in      *Input
	machine *cluster.Machine // nil for cubes loaded from a v1 snapshot
	views   []lattice.ViewID
	orders  map[lattice.ViewID]lattice.Order
	// topoMu guards views/orders/trees against the advisor's online
	// materialize/retire (writers additionally hold ingMu and the
	// engine maintenance lock; gather-path readers take the read lock).
	topoMu  sync.RWMutex
	metrics Metrics
	op      record.AggOp
	// engine serves distributed queries; nil for cubes loaded from a
	// v1 snapshot, which fall back to gather-and-scan.
	engine *queryengine.Engine
	// sketch backs holistic aggregates: view measures are handles into
	// it. Nil for algebraic cubes.
	sketch *sketch.Store
	// cache holds gathered views for machine-less (loaded) cubes.
	cache map[lattice.ViewID]*record.Table

	// opts keeps the build configuration so incremental batches reuse
	// the same thresholds, overlap mode, and aggregate operator.
	opts Options
	// trees holds the retained per-dimension schedule trees from a
	// global-tree build; ingest falls back to a deterministic schedule
	// derived from the view orders when absent (local-tree builds and
	// loaded snapshots).
	trees map[int]*lattice.Tree

	// pending buffers appended facts (internal dimension order) until
	// the next flush; ingMu serializes buffer access and flushes.
	pending *record.Table
	ingMu   sync.Mutex
	// commitHooks are called after every successfully applied batch,
	// in registration order, with ingMu held — so hooks observe batches
	// in exactly commit order. The replica tier's delta shipping taps
	// in here.
	commitHooks map[int]func(rows [][]uint32, meas []int64)
	nextHookID  int
	// ingestFaults is a one-shot fault plan consumed by the next flush.
	ingestFaults *faults.Plan
	// loadedV1 marks cubes loaded from a version-1 snapshot, which
	// cannot prove they were not iceberg builds and so reject ingest.
	loadedV1 bool
	// metMu guards metrics, which ingest updates in place.
	metMu sync.RWMutex
}

// Build runs the parallel shared-nothing cube construction and returns
// the distributed cube. Build never panics on bad configuration or
// internal failure: configuration is validated up front and residual
// panics from the simulated cluster are recovered into errors.
func Build(in *Input, opts Options) (_ *Cube, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rolap: internal failure: %v", r)
		}
	}()
	if in == nil {
		return nil, fmt.Errorf("rolap: nil input")
	}
	p := opts.Processors
	if p == 0 {
		p = 4
	}
	if p < 1 || p > 1024 {
		return nil, fmt.Errorf("rolap: processor count %d out of range", p)
	}
	d := len(in.schema.Dimensions)

	var selected []lattice.ViewID
	if opts.SelectedViews != nil {
		seen := map[lattice.ViewID]bool{}
		for _, names := range opts.SelectedViews {
			v, err := in.viewOf(names)
			if err != nil {
				return nil, err
			}
			if !seen[v] {
				seen[v] = true
				selected = append(selected, v)
			}
		}
		if len(selected) == 0 {
			return nil, fmt.Errorf("rolap: empty view selection")
		}
	}

	var st *sketch.Store
	if opts.Aggregate.Holistic() {
		if opts.MinSupport > 0 {
			return nil, fmt.Errorf("rolap: iceberg cubes are not supported with holistic aggregates (group state is a sketch, not a comparable total)")
		}
		for i := 0; i < in.table.Len(); i++ {
			if in.table.Meas(i) < 0 {
				return nil, fmt.Errorf("rolap: negative measure %d at fact %d: holistic aggregates require non-negative measures (negative values are reserved for sketch handles)", in.table.Meas(i), i)
			}
		}
		st = sketch.NewStore(sketch.Config{
			Kind:           opts.Aggregate.sketchKind(),
			ArenaBudget:    opts.SketchArenaBudget,
			ExactThreshold: opts.SketchExactThreshold,
			MaxBuckets:     opts.SketchMaxBuckets,
		})
	}

	params := costmodel.Default()
	if opts.Hardware == ModernCluster {
		params = costmodel.Modern()
	}
	m := cluster.New(p, params)
	// Distribute the fact table evenly (Figure 2b's input layout).
	n := in.table.Len()
	for r := 0; r < p; r++ {
		lo, hi := r*n/p, (r+1)*n/p
		m.Proc(r).Disk().Put("raw", in.table.Sub(lo, hi))
	}

	// The schema's (reordered) cardinalities drive caller-supplied key
	// plans in the external sorts: denser codes mean narrower plans,
	// so more shapes fit the <=128-bit packed radix window.
	cards := make([]int, d)
	for i := 0; i < d; i++ {
		cards[i] = in.schema.Dimensions[in.perm[i]].Cardinality
	}
	cfg := core.Config{
		D:           d,
		Selected:    selected,
		Gamma:       opts.Gamma,
		MergeGamma:  opts.MergeGamma,
		Agg:         opts.Aggregate.op(),
		Sketch:      st,
		Cards:       cards,
		MinSupport:  opts.MinSupport,
		OverlapComm: opts.OverlapComm,
		Faults:      opts.Faults.internal(),
		Checkpoint: core.CheckpointConfig{
			Enabled:       opts.Checkpoint.Enabled,
			Interval:      opts.Checkpoint.Interval,
			DetectSeconds: opts.Checkpoint.DetectSeconds,
		},
	}
	if opts.LocalScheduleTrees {
		cfg.Schedule = core.LocalTree
	}
	if opts.GreedyPartialPlanner {
		cfg.Partial = partialcube.Greedy
	}
	if opts.FlajoletMartin {
		cfg.Estimator = core.FMEstimator
	}
	met, err := core.BuildCube(m, "raw", cfg)
	if err != nil {
		var crash *faults.CrashError
		if errors.As(err, &crash) {
			return nil, &FailedBuildError{
				Processor: crash.Rank,
				Dimension: crash.Dimension,
				Phase:     crash.Phase,
				Superstep: crash.Superstep,
			}
		}
		return nil, err
	}

	views := selected
	if views == nil {
		views = lattice.AllViews(d)
	}
	// The build is done: clear any injected fault plan (and straggler
	// slowdowns) so it cannot fire during query supersteps.
	m.SetFaults(nil)
	opts.Processors = p
	engine := queryengine.New(m, met.ViewOrders, met.ViewRows, opts.Aggregate.op())
	if st != nil {
		engine.SetSketch(st)
	}
	return &Cube{
		in:      in,
		machine: m,
		views:   views,
		orders:  met.ViewOrders,
		metrics: publicMetrics(in, met),
		op:      opts.Aggregate.op(),
		engine:  engine,
		sketch:  st,
		opts:    opts,
		trees:   met.SchedTrees,
		pending: record.New(d, 0),
	}, nil
}

// viewOf translates a set of user dimension names into a ViewID.
func (in *Input) viewOf(names []string) (lattice.ViewID, error) {
	v := lattice.Empty
	for _, name := range names {
		found := -1
		for u, dim := range in.schema.Dimensions {
			if dim.Name == name {
				found = u
				break
			}
		}
		if found == -1 {
			return 0, fmt.Errorf("rolap: unknown dimension %q", name)
		}
		i := in.inv[found]
		if v.Has(i) {
			return 0, fmt.Errorf("rolap: dimension %q repeated in view", name)
		}
		v = v.Add(i)
	}
	return v, nil
}

// namesOf renders an internal order as user dimension names.
func (in *Input) namesOf(o lattice.Order) []string {
	out := make([]string, len(o))
	for k, i := range o {
		out[k] = in.schema.Dimensions[in.perm[i]].Name
	}
	return out
}
