package rolap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/lattice"
)

var allDims = []string{"month", "store", "product", "channel"}

// buildMinimal builds a cube materializing only the full view — the
// static-minimal starting point the advisor grows from.
func buildMinimal(t *testing.T, n int, seed int64, opts AdvisorOptions) (*Cube, *Advisor, func(dims []string, key []uint32) int64) {
	t.Helper()
	in, oracle := loadRandom(t, n, seed)
	cube, err := Build(in, Options{Processors: 3, SelectedViews: [][]string{allDims}})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := cube.NewAdvisor(opts)
	if err != nil {
		t.Fatal(err)
	}
	return cube, adv, oracle
}

// checkOracle compares a handful of aggregates against ground truth.
func checkOracle(t *testing.T, cube *Cube, oracle func([]string, []uint32) int64, tag string) {
	t.Helper()
	checks := []struct {
		dims []string
		key  []uint32
	}{
		{[]string{"store"}, []uint32{7}},
		{[]string{"store"}, []uint32{21}},
		{[]string{"month", "channel"}, []uint32{3, 1}},
		{[]string{"product"}, []uint32{11}},
		{nil, nil},
	}
	for _, c := range checks {
		got, err := cube.Aggregate(c.dims, c.key)
		if err != nil {
			t.Fatalf("%s: aggregate %v: %v", tag, c.dims, err)
		}
		if want := oracle(c.dims, c.key); got != want {
			t.Fatalf("%s: aggregate %v%v = %d, want %d", tag, c.dims, c.key, got, want)
		}
	}
}

func viewLive(c *Cube, dims []string) bool {
	v, err := c.in.viewOf(dims)
	if err != nil {
		panic(err)
	}
	_, ok := c.engine.Order(v)
	return ok
}

func TestAdvisorMaterializesHotView(t *testing.T) {
	cube, adv, oracle := buildMinimal(t, 2000, 1, AdvisorOptions{Seed: 5})
	if got := len(cube.Views()); got != 1 {
		t.Fatalf("minimal cube has %d views, want 1", got)
	}

	// Hammer one small group-by; every query falls back to the full
	// view until the advisor reacts.
	for i := 0; i < 12; i++ {
		if _, err := cube.GroupBy([]string{"store"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := adv.Step()
	if err != nil {
		t.Fatal(err)
	}
	var made bool
	for _, r := range recs {
		if r.Action == "materialize" && reflect.DeepEqual(r.View, []string{"store"}) {
			made = true
			if r.EstRows <= 0 {
				t.Fatalf("materialization reported %d rows", r.EstRows)
			}
		}
	}
	if !made {
		t.Fatalf("hot view not materialized; step did %+v", recs)
	}
	if !viewLive(cube, []string{"store"}) {
		t.Fatal("materialized view not live in the engine")
	}

	st := adv.Stats()
	if st.Steps != 1 || st.Materialized < 1 || st.CurrentViews != len(cube.Views()) {
		t.Fatalf("stats %+v inconsistent", st)
	}
	if st.BuildSimSeconds <= 0 {
		t.Fatalf("online build charged no simulated time: %+v", st)
	}

	// Answers are unchanged, and the new view now serves directly.
	checkOracle(t, cube, oracle, "after materialize")
	vw, err := cube.GroupBy([]string{"store"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vw.Attributes, []string{"store"}) {
		t.Fatalf("GroupBy attributes %v", vw.Attributes)
	}
}

func TestAdvisorRetiresColdViews(t *testing.T) {
	in, oracle := loadRandom(t, 2000, 2)
	cube, err := Build(in, Options{Processors: 2}) // full cube: 16 views
	if err != nil {
		t.Fatal(err)
	}
	adv, err := cube.NewAdvisor(AdvisorOptions{RetirePerStep: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// No traffic at all: everything except the frontier is cold.
	for i := 0; i < 3; i++ {
		if _, err := adv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(cube.Views()); got != 1 {
		t.Fatalf("%d views left after retirement, want 1 (the full view)", got)
	}
	if !viewLive(cube, allDims) {
		t.Fatal("frontier full view was retired")
	}
	if st := adv.Stats(); st.Retired != 15 {
		t.Fatalf("Retired = %d, want 15", st.Retired)
	}
	// Every query now falls back to the full view — same answers.
	checkOracle(t, cube, oracle, "after retire")

	// Ingest still works against the shrunken topology (the retained
	// schedule trees were invalidated), and answers track the new rows.
	rows := [][]uint32{{1, 2, 3, 0}, {4, 5, 6, 1}}
	meas := []int64{10, 20}
	if _, err := cube.Ingest(rows, meas); err != nil {
		t.Fatal(err)
	}
	got, err := cube.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle(nil, nil) + 30; got != want {
		t.Fatalf("grand total after ingest = %d, want %d", got, want)
	}
}

// TestAdvisorConvergesAndAnswersMatchOracle drives a Zipf-skewed query
// mix against an adapting minimal cube and a static full cube, checking
// every answer agrees while the advisor grows a small working set.
func TestAdvisorConvergesAndAnswersMatchOracle(t *testing.T) {
	in, _ := loadRandom(t, 2500, 3)
	static, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	cube, adv, _ := buildMinimal(t, 2500, 3, AdvisorOptions{
		MaxViews: 6, MaterializePerStep: 2, RetirePerStep: 1, Seed: 17,
	})

	// A skewed pool: two hot shapes dominate, tail shapes appear rarely.
	pool := [][]string{
		{"store"},
		{"month", "channel"},
		{"product"},
		{"store", "product"},
		{"month"},
		{"channel"},
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 6; step++ {
		for q := 0; q < 30; q++ {
			// Zipf-ish pick: shape k with weight ~1/2^k.
			k := 0
			for k < len(pool)-1 && rng.Intn(2) == 0 {
				k++
			}
			dims := pool[k]
			got, err := cube.GroupBy(dims, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := static.GroupBy(dims, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("step %d: %v rows %d vs static %d", step, dims, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				gk, gm := got.Row(i)
				wk, wm := want.Row(i)
				if gm != wm || !reflect.DeepEqual(gk, wk) {
					t.Fatalf("step %d: %v row %d: (%v,%d) vs static (%v,%d)", step, dims, i, gk, gm, wk, wm)
				}
			}
		}
		if _, err := adv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := adv.Stats()
	if st.Materialized == 0 {
		t.Fatalf("advisor never materialized under sustained fallbacks: %+v", st)
	}
	if got := len(cube.Views()); got > 7 { // MaxViews 6 + tolerance for frontier
		t.Fatalf("advisor grew %d views, cap was 6", got)
	}
	// The hot shapes ended up materialized.
	if !viewLive(cube, []string{"store"}) {
		t.Fatal("hottest shape {store} not materialized after convergence")
	}
}

// TestAdvisorDeterministic replays the same traffic transcript twice
// and requires identical recommendation transcripts and final view
// sets — the reproducibility contract for a fixed seed.
func TestAdvisorDeterministic(t *testing.T) {
	run := func() ([][]Recommendation, []ViewID) {
		cube, adv, _ := buildMinimal(t, 1500, 4, AdvisorOptions{Seed: 23, MaxViews: 5})
		var transcript [][]Recommendation
		shapes := [][]string{{"store"}, {"month", "channel"}, {"store"}, {"product"}}
		for step := 0; step < 4; step++ {
			for q := 0; q < 10; q++ {
				if _, err := cube.GroupBy(shapes[(step+q)%len(shapes)], nil); err != nil {
					t.Fatal(err)
				}
			}
			recs, err := adv.Step()
			if err != nil {
				t.Fatal(err)
			}
			transcript = append(transcript, recs)
		}
		var views []ViewID
		for _, v := range cube.engine.Views() {
			views = append(views, ViewID(v))
		}
		return transcript, views
	}
	t1, v1 := run()
	t2, v2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("recommendation transcripts differ:\n%+v\nvs\n%+v", t1, t2)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("final view sets differ: %v vs %v", v1, v2)
	}
}

// ViewID re-exports the lattice view identifier for test assertions.
type ViewID = lattice.ViewID

// TestAdvisorConcurrentWithServingAndIngest races Advisor.Step against
// live server traffic and ingest batches: the advisor's topology
// mutations must never produce a wrong answer, a stuck replan, or a
// data race (run under -race).
func TestAdvisorConcurrentWithServingAndIngest(t *testing.T) {
	in, _ := loadRandom(t, 2000, 5)
	cube, err := Build(in, Options{Processors: 2, SelectedViews: [][]string{allDims}})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := cube.NewAdvisor(AdvisorOptions{Seed: 31, MaxViews: 6, MinFallbacks: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cube.NewServer(ServerOptions{Workers: 4, QueueDepth: 200})
	if err != nil {
		t.Fatal(err)
	}

	shapes := [][]string{{"store"}, {"month"}, {"product", "channel"}, {"store", "product"}, nil}
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	// Serving traffic.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				dims := shapes[(w+i)%len(shapes)]
				if _, _, err := srv.GroupBy(ctx, dims, nil); err != nil {
					var ov *OverloadError
					if errors.As(err, &ov) {
						continue // shedding is allowed under pressure
					}
					errCh <- fmt.Errorf("serve %v: %w", dims, err)
					return
				}
			}
		}(w)
	}
	// Advisor stepping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := adv.Step(); err != nil {
				errCh <- fmt.Errorf("advisor: %w", err)
				return
			}
		}
	}()
	// Ingest batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 5; b++ {
			rows := [][]uint32{{uint32(b % 12), 1, 2, 0}, {3, uint32(b % 40), 4, 1}}
			if _, err := cube.Ingest(rows, []int64{1, 1}); err != nil {
				errCh <- fmt.Errorf("ingest: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Post-race sanity: the cube still answers, and the grand total
	// reflects the base data plus all ten ingested rows.
	want, err := cube.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := static.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want != base+10 {
		t.Fatalf("grand total %d, want %d", want, base+10)
	}
}

// TestServerPerViewStats checks the serving-side demand counters the
// advisor and `cubeql -stats` consume: exact hits, superset fallbacks,
// and cache hits are credited to the TARGET view, not the source.
func TestServerPerViewStats(t *testing.T) {
	cube, _, _ := buildMinimal(t, 1000, 8, AdvisorOptions{})
	srv, err := cube.NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ { // first executes, rest hit the cache
		if _, _, err := srv.GroupBy(ctx, []string{"store"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := srv.GroupBy(ctx, allDims, nil); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	storeKey := "store"
	fullKey := "channel,month,product,store"
	vs, ok := st.Views[storeKey]
	if !ok {
		t.Fatalf("no per-view stats for %q: %+v", storeKey, st.Views)
	}
	if vs.Hits != 0 || vs.Fallbacks != 3 {
		t.Fatalf("store stats %+v, want 3 fallbacks", vs)
	}
	if vs.CacheHits != 2 {
		t.Fatalf("store CacheHits = %d, want 2", vs.CacheHits)
	}
	if vs.RowsScanned <= 0 {
		t.Fatalf("store RowsScanned = %d", vs.RowsScanned)
	}
	fs, ok := st.Views[fullKey]
	if !ok || fs.Hits != 1 || fs.Fallbacks != 0 {
		t.Fatalf("full-view stats %+v (ok=%v), want 1 hit", fs, ok)
	}
	// Stats() copies: mutating the copy must not leak back.
	st.Views[storeKey] = ViewServeStats{Hits: 99}
	if srv.Stats().Views[storeKey].Hits != 0 {
		t.Fatal("ServerStats.Views aliases server state")
	}
}

func TestNewAdvisorRejects(t *testing.T) {
	in, _ := loadRandom(t, 500, 6)
	ice, err := Build(in, Options{Processors: 2, MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ice.NewAdvisor(AdvisorOptions{}); err == nil {
		t.Fatal("iceberg cube accepted")
	}
	in2, _ := loadRandom(t, 500, 6)
	cube, err := Build(in2, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.NewAdvisor(AdvisorOptions{DecayFactor: 1.5}); err == nil {
		t.Fatal("bad decay factor accepted")
	}
}

func TestAdvisorRunStepsOnTicker(t *testing.T) {
	cube, adv, _ := buildMinimal(t, 800, 7, AdvisorOptions{Interval: time.Millisecond, Seed: 3})
	_ = cube
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := adv.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if st := adv.Stats(); st.Steps == 0 {
		t.Fatal("Run made no steps before cancellation")
	}
}
