package rolap

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lattice"
	"repro/internal/record"
)

// View is one materialized group-by, gathered from the processors'
// disks into a single sorted, duplicate-free relation.
type View struct {
	// Attributes lists the view's dimensions (user names) in the
	// materialized column order.
	Attributes []string
	// Estimated marks measures served from mergeable sketches
	// (CountDistinct / Quantile cubes): values are estimates, exact
	// only while the per-group state stayed under the sketch's exact
	// threshold.
	Estimated bool
	order     lattice.Order
	rows      *record.Table
}

// Views returns the names of the materialized views, each a sorted
// list of dimension names ("[]" is the grand total), in deterministic
// order.
func (c *Cube) Views() [][]string {
	c.topoMu.RLock()
	views := append([]lattice.ViewID(nil), c.views...)
	c.topoMu.RUnlock()
	out := make([][]string, 0, len(views))
	for _, v := range views {
		names := c.in.namesOf(lattice.Canonical(v))
		sort.Strings(names)
		out = append(out, names)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// Processors returns the machine size the cube was built on (for
// loaded snapshots, the size recorded in the metrics).
func (c *Cube) Processors() int {
	if c.machine == nil {
		return c.metrics.Processors
	}
	return c.machine.P()
}

// lookup resolves a dimension-name set to a materialized ViewID.
func (c *Cube) lookup(dims []string) (lattice.ViewID, error) {
	v, err := c.in.viewOf(dims)
	if err != nil {
		return 0, err
	}
	c.topoMu.RLock()
	_, ok := c.orders[v]
	c.topoMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("rolap: view %v not materialized", dims)
	}
	return v, nil
}

// View gathers the named view (a set of dimension names; empty for the
// grand total) from all processors into one relation. On a holistic
// cube the measures are served estimates (distinct counts, or the
// median for Quantile cubes) and Estimated is set.
func (c *Cube) View(dims []string) (*View, error) {
	v, err := c.lookup(dims)
	if err != nil {
		return nil, err
	}
	vw, ok := c.gather(v)
	if !ok {
		return nil, fmt.Errorf("rolap: view %v not materialized", dims)
	}
	return c.resolveView(vw, defaultPercentile), nil
}

// defaultPercentile is the rank Quantile cubes serve when the caller
// does not pick one (the median).
const defaultPercentile = 0.5

// resolveMeasure serves one measure word: identity on algebraic
// cubes, sketch estimate (at rank q for Quantile) on holistic ones.
func (c *Cube) resolveMeasure(m int64, q float64) int64 {
	if c.sketch == nil {
		return m
	}
	return c.sketch.EstimateMeasure(m, q)
}

// resolveView replaces sketch handles with served estimates in a
// gathered view. The rows are rewritten into a fresh table — gathered
// rows can alias the loaded-cube cache, which must keep its handles.
func (c *Cube) resolveView(vw *View, q float64) *View {
	if c.sketch == nil {
		return vw
	}
	res := record.New(vw.rows.D, vw.rows.Len())
	for i := 0; i < vw.rows.Len(); i++ {
		res.Append(vw.rows.Row(i), c.sketch.EstimateMeasure(vw.rows.Meas(i), q))
	}
	vw.rows = res
	vw.Estimated = true
	return vw
}

// gather collects view v from all processors. It reports false when
// the view is not (or no longer) materialized — the advisor can
// retire a view between a lookup and the gather, and reading the
// order under the maintenance lock guarantees the order and the
// slices belong to the same topology.
func (c *Cube) gather(v lattice.ViewID) (*View, bool) {
	var order lattice.Order
	found := false
	var rows *record.Table
	read := func() error {
		c.topoMu.RLock()
		order, found = c.orders[v]
		c.topoMu.RUnlock()
		if !found {
			return nil
		}
		rows = c.gatherViewRaw(v)
		return nil
	}
	if c.machine != nil && c.engine != nil {
		// Serialize against incremental ingest and online
		// materialization: a gather sees either the pre-batch or
		// post-batch slices, never a mixture.
		c.engine.Maintain(read)
	} else {
		read()
	}
	if !found {
		return nil, false
	}
	return &View{
		Attributes: c.in.namesOf(order),
		order:      order,
		rows:       rows,
	}, true
}

// Len returns the view's row (group) count.
func (v *View) Len() int { return v.rows.Len() }

// Row returns group i's attribute values (in Attributes order) and its
// aggregated measure.
func (v *View) Row(i int) ([]uint32, int64) {
	return v.rows.RowCopy(i), v.rows.Meas(i)
}

// Aggregate returns the measure of the group with the given attribute
// values (in Attributes order), and whether it exists.
func (v *View) Aggregate(key []uint32) (int64, bool) {
	if len(key) != v.rows.D {
		return 0, false
	}
	i := record.LowerBound(v.rows, key)
	if i < v.rows.Len() && record.CompareRowKey(v.rows, i, key) == 0 {
		return v.rows.Meas(i), true
	}
	return 0, false
}

// Aggregate answers a point query: the total measure for the group
// identified by the given dimension names and values. If the exact
// view is materialized it is used directly; otherwise the query is
// answered by scanning the smallest materialized superset view (the
// standard ROLAP fallback).
func (c *Cube) Aggregate(dims []string, key []uint32) (int64, error) {
	if len(dims) != len(key) {
		return 0, fmt.Errorf("rolap: %d dimensions but %d key values", len(dims), len(key))
	}
	want, err := c.in.viewOf(dims)
	if err != nil {
		return 0, err
	}
	c.topoMu.RLock()
	_, exact := c.orders[want]
	c.topoMu.RUnlock()
	if exact {
		if vw, ok := c.gather(want); ok {
			// Reorder the caller's key into the materialized order.
			k := make([]uint32, len(key))
			for col, dim := range vw.order {
				k[col] = key[indexOfDim(dims, c.in, dim)]
			}
			m, ok := vw.Aggregate(k)
			if !ok {
				return 0, nil
			}
			return c.resolveMeasure(m, defaultPercentile), nil
		}
		// Retired between the check and the gather; fall back.
	}
	// Fallback: smallest materialized superset, scanned with a filter.
	best, err := c.smallestSuperset(want)
	if err != nil {
		return 0, fmt.Errorf("rolap: no materialized view can answer %v", dims)
	}
	vw, ok := c.gather(best)
	if !ok {
		return 0, fmt.Errorf("rolap: view retired while gathering; retry")
	}
	agg, release := c.scratchAgg()
	defer release()
	var total int64
	first := true
	for i := 0; i < vw.rows.Len(); i++ {
		match := true
		for col, dim := range vw.order {
			if !want.Has(dim) {
				continue
			}
			if vw.rows.Dim(i, col) != key[indexOfDim(dims, c.in, dim)] {
				match = false
				break
			}
		}
		if match {
			if first {
				total = vw.rows.Meas(i)
				first = false
			} else {
				total = agg.Combine(total, vw.rows.Meas(i))
			}
		}
	}
	if first {
		return 0, nil
	}
	return c.resolveMeasure(agg.Seal(total), defaultPercentile), nil
}

// scratchAgg returns the aggregate descriptor for a gather-path merge:
// on holistic cubes the combine runs in a scratch sketch shard, dropped
// by the returned release func once every handle is resolved.
func (c *Cube) scratchAgg() (record.Agg, func()) {
	agg := record.Agg{Op: c.op}
	if c.sketch == nil {
		return agg, func() {}
	}
	sc := c.sketch.Scratch()
	agg.State = sc
	return agg, func() { c.sketch.ReleaseScratch(sc) }
}

// indexOfDim finds the position in dims of the user name for internal
// dimension i.
func indexOfDim(dims []string, in *Input, i int) int {
	name := in.schema.Dimensions[in.perm[i]].Name
	for k, d := range dims {
		if d == name {
			return k
		}
	}
	panic(fmt.Sprintf("rolap: dimension %q not in query", name))
}

// viewRowCount reads a view's current global row count for planning,
// under the metrics lock (ingest updates the counts in place).
func (c *Cube) viewRowCount(v lattice.ViewID) int64 {
	c.metMu.RLock()
	defer c.metMu.RUnlock()
	return c.metrics.ViewRows[viewName(c.in, v)]
}

// viewName renders a ViewID as the canonical sorted-name key used in
// Metrics.ViewRows.
func viewName(in *Input, v lattice.ViewID) string {
	names := in.namesOf(lattice.Canonical(v))
	sort.Strings(names)
	return strings.Join(names, ",")
}
