package rolap

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/replica"
)

// ReplicaOptions configures a replicated serving tier over one ingest
// leader.
type ReplicaOptions struct {
	// Replicas is the number of read replicas (default 2).
	Replicas int
	// MaxLag is the staleness bound in committed batches: a replica
	// serves reads only while it is within MaxLag batches of the
	// leader. 0 means replicas serve only when fully caught up; reads
	// block (up to their context deadline) while no replica is within
	// the bound.
	MaxLag uint64
	// SnapshotEvery refreshes the bootstrap snapshot every N committed
	// batches, compacting the delta log (default 16; negative disables
	// refresh — crashed replicas then replay the whole log from the
	// creation-time snapshot).
	SnapshotEvery int
	// Server configures each replica's query server (workers, queue,
	// cache, timeout).
	Server ServerOptions
	// Faults, when non-nil, injects deterministic replica crashes:
	// Crash.Processor is the replica index and Crash.Superstep the
	// batch sequence it dies at, just before applying that batch. The
	// crashed replica re-bootstraps from the latest snapshot and
	// replays the delta log. Drops, corruptions and stragglers in the
	// plan are ignored — replication ships committed batches, not
	// h-relations.
	Faults *FaultPlan
}

// ReplicaSet is a replicated serving tier: N read replicas, each a
// full cube bootstrapped from a snapshot of the leader and advanced by
// applying the leader's committed ingest batches in commit order.
// Reads are load-balanced across the replicas within the staleness
// bound, with cache affinity — repeat queries prefer the replica whose
// result cache already holds them. The leader keeps ingesting through
// its normal Ingest path and never blocks on replica progress.
//
// Because the delta pipeline is deterministic and snapshots re-scatter
// view slices on the leader's partition boundaries, a replica that has
// applied batch k serves exactly what the leader served as of batch k
// — same views, same per-view version counters.
type ReplicaSet struct {
	leader *Cube
	group  *replica.Group
	hookID int
	closed bool
}

// replicaNode is one replica's serving state: its own cube (loaded
// from a leader snapshot, advanced by shipped batches) and a query
// server with a private result cache and prefix indexes.
type replicaNode struct {
	cube *Cube
	srv  *Server
}

// Apply implements replica.Node: one committed leader batch, rows in
// internal dimension order.
func (n *replicaNode) Apply(rows [][]uint32, meas []int64) error {
	return n.cube.applyShippedBatch(rows, meas)
}

// NewReplicaSet bootstraps a replicated serving tier over the cube.
// The snapshot, the replica bootstraps, and the commit-hook
// registration happen atomically with respect to Ingest, so no batch
// can slip between the snapshot and the delta stream.
func (c *Cube) NewReplicaSet(opts ReplicaOptions) (*ReplicaSet, error) {
	if c.engine == nil {
		return nil, fmt.Errorf("rolap: cube has no cluster (loaded without a machine); cannot replicate")
	}
	n := opts.Replicas
	if n == 0 {
		n = 2
	}
	if n < 1 {
		return nil, fmt.Errorf("rolap: replica set needs at least one replica, got %d", n)
	}
	snapEvery := opts.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 16
	}
	srvOpts := opts.Server

	cfg := replica.Config{
		Replicas: n,
		MaxLag:   opts.MaxLag,
		Faults:   opts.Faults.internal(),
		Bootstrap: func(snapshot []byte) (replica.Node, error) {
			cube, err := LoadCube(bytes.NewReader(snapshot))
			if err != nil {
				return nil, err
			}
			srv, err := cube.NewServer(srvOpts)
			if err != nil {
				return nil, err
			}
			return &replicaNode{cube: cube, srv: srv}, nil
		},
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(n); err != nil {
			return nil, fmt.Errorf("rolap: %w", err)
		}
	}

	c.ingMu.Lock()
	defer c.ingMu.Unlock()

	// Bootstrap snapshots exclude the leader's pending buffer: those
	// facts are not yet part of any committed batch, and when they
	// commit they arrive at the replicas as a shipped batch — including
	// them here would double count them.
	var buf bytes.Buffer
	if err := c.saveLocked(&buf, false); err != nil {
		return nil, err
	}
	group, err := replica.New(cfg, buf.Bytes(), 0)
	if err != nil {
		return nil, err
	}

	rs := &ReplicaSet{leader: c, group: group}
	rs.hookID = c.addCommitHookLocked(func(rows [][]uint32, meas []int64) {
		seq := group.Commit(rows, meas)
		if snapEvery > 0 && seq%uint64(snapEvery) == 0 {
			// Refresh the bootstrap snapshot at this exact commit: the
			// hook runs under ingMu with the pending buffer just
			// cleared, so the serialized cube is precisely the
			// post-batch-seq state. The gather is leader-local work —
			// it never waits on replica progress.
			var b bytes.Buffer
			if err := c.saveLocked(&b, false); err == nil {
				group.SetSnapshot(b.Bytes(), seq)
			}
		}
	})
	return rs, nil
}

// GroupBy serves an ad-hoc group-by with equality filters from a
// replica within the staleness bound, like Server.GroupBy.
func (r *ReplicaSet) GroupBy(ctx context.Context, dims []string, filters map[string]uint32) (*View, QueryMetrics, error) {
	node, release, err := r.group.Acquire(ctx, groupByAffinity(dims, filters))
	if err != nil {
		return nil, QueryMetrics{}, err
	}
	defer release()
	return node.(*replicaNode).srv.GroupBy(ctx, dims, filters)
}

// Aggregate serves a point lookup from a replica within the staleness
// bound, like Server.Aggregate.
func (r *ReplicaSet) Aggregate(ctx context.Context, dims []string, key []uint32) (int64, QueryMetrics, error) {
	node, release, err := r.group.Acquire(ctx, rangeAffinity(dims, key, key))
	if err != nil {
		return 0, QueryMetrics{}, err
	}
	defer release()
	return node.(*replicaNode).srv.Aggregate(ctx, dims, key)
}

// RangeAggregate serves a range aggregate from a replica within the
// staleness bound, like Server.RangeAggregate.
func (r *ReplicaSet) RangeAggregate(ctx context.Context, dims []string, lo, hi []uint32) (int64, QueryMetrics, error) {
	node, release, err := r.group.Acquire(ctx, rangeAffinity(dims, lo, hi))
	if err != nil {
		return 0, QueryMetrics{}, err
	}
	defer release()
	return node.(*replicaNode).srv.RangeAggregate(ctx, dims, lo, hi)
}

// WaitCaughtUp blocks until every non-failed replica has applied the
// leader's last committed batch, or ctx expires.
func (r *ReplicaSet) WaitCaughtUp(ctx context.Context) error {
	return r.group.WaitCaughtUp(ctx)
}

// CrashReplica takes replica i down as if it had failed; its shipper
// re-bootstraps it from the latest snapshot and replays the delta log.
func (r *ReplicaSet) CrashReplica(i int) error {
	return r.group.Crash(i)
}

// Stats snapshots the replica set's replication and serving counters.
func (r *ReplicaSet) Stats() ReplicaSetStats {
	gs := r.group.Stats()
	s := ReplicaSetStats{
		LeaderSeq:      gs.LeaderSeq,
		SnapshotSeq:    gs.SnapSeq,
		DeltaLogLen:    gs.LogLen,
		Routed:         gs.Routed,
		StalenessWaits: gs.Waits,
	}
	for _, rep := range gs.Replicas {
		rs := ReplicaStats{
			State:      rep.State,
			Applied:    rep.Applied,
			Lag:        rep.Lag,
			Routed:     rep.Routed,
			Bootstraps: rep.Bootstraps,
			Crashes:    rep.Crashes,
		}
		if node, ok := rep.Node.(*replicaNode); ok && node != nil {
			rs.Server = node.srv.Stats()
		}
		s.Replicas = append(s.Replicas, rs)
	}
	return s
}

// Close detaches the replica set from the leader's commit stream and
// stops the shipping goroutines. The leader keeps ingesting; in-flight
// reads drain normally.
func (r *ReplicaSet) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.leader.removeCommitHook(r.hookID)
	r.group.Close()
}

// groupByAffinity hashes a group-by request into a stable routing
// affinity, so repeat queries land on the replica whose result cache
// already holds them. Filters are folded in sorted key order to keep
// the hash independent of map iteration.
func groupByAffinity(dims []string, filters map[string]uint32) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "g")
	for _, d := range dims {
		io.WriteString(h, "|")
		io.WriteString(h, d)
	}
	names := make([]string, 0, len(filters))
	for name := range filters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "#%s=%d", name, filters[name])
	}
	return nonzero(h.Sum64())
}

// rangeAffinity hashes a range-aggregate request into a stable routing
// affinity.
func rangeAffinity(dims []string, lo, hi []uint32) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "s")
	for _, d := range dims {
		io.WriteString(h, "|")
		io.WriteString(h, d)
	}
	for k := range lo {
		fmt.Fprintf(h, "#%d..%d", lo[k], hi[k])
	}
	return nonzero(h.Sum64())
}

// nonzero keeps a hash out of the "no affinity" sentinel.
func nonzero(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}
