package rolap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/replica"
)

// ResilienceOptions configure the replica set's serving-path failure
// policy: bounded retry with failover, per-replica circuit breakers,
// optional hedged requests, and the leader-cube fallback of last
// resort. The zero value enables sane defaults; set a field negative
// to disable the corresponding mechanism where noted.
type ResilienceOptions struct {
	// MaxRetries bounds how many times one query fails over to a
	// different replica after a replica-indicting failure or overload
	// (default 3; negative disables retries — first failure is final).
	MaxRetries int
	// RetryBackoff is the base failover backoff: retry k waits
	// RetryBackoff × 2^(k-1), capped at 100ms (default 1ms).
	RetryBackoff time.Duration
	// FailoverWait bounds how long a query waits for an eligible
	// replica before falling back to the leader (default 50ms). Only
	// meaningful while leader fallback is enabled; without it queries
	// wait out their own deadline as before.
	FailoverWait time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// replica's circuit breaker (default 3; negative disables
	// breakers). BreakerCooldown is how long an open breaker rejects
	// routing before admitting a half-open probe (default 100ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Hedge enables hedged reads: when a query's first attempt has not
	// completed within the observed HedgePercentile latency (at least
	// HedgeFloor), a second attempt launches on a different replica
	// and the first success wins. Defaults: percentile 0.95, floor
	// 1ms. Hedging needs a short latency history before it arms.
	Hedge           bool
	HedgePercentile float64
	HedgeFloor      time.Duration
	// DisableLeaderFallback makes replica exhaustion an error instead
	// of serving the query from the leader's own cube.
	DisableLeaderFallback bool
}

// ReplicaOptions configures a replicated serving tier over one ingest
// leader.
type ReplicaOptions struct {
	// Replicas is the number of read replicas (default 2).
	Replicas int
	// MaxLag is the staleness bound in committed batches: a replica
	// serves reads only while it is within MaxLag batches of the
	// leader. 0 means replicas serve only when fully caught up; reads
	// wait (up to FailoverWait, then the leader fallback; up to their
	// own deadline with fallback disabled) while no replica is within
	// the bound.
	MaxLag uint64
	// SnapshotEvery refreshes the bootstrap snapshot every N committed
	// batches, compacting the delta log (default 16; negative disables
	// refresh — crashed replicas then replay the whole log from the
	// creation-time snapshot).
	SnapshotEvery int
	// Server configures each replica's query server (workers, queue,
	// cache, timeout), and the leader fallback server.
	Server ServerOptions
	// Resilience configures failover, breakers, hedging, and the
	// leader fallback.
	Resilience ResilienceOptions
	// Faults, when non-nil, injects deterministic replica crashes:
	// Crash.Processor is the replica index and Crash.Superstep the
	// batch sequence it dies at, just before applying that batch. The
	// crashed replica re-bootstraps from the latest snapshot and
	// replays the delta log. Drops, corruptions and stragglers in the
	// plan are ignored — replication ships committed batches, not
	// h-relations.
	Faults *FaultPlan
	// ServeFaults, when non-nil, injects deterministic serving-time
	// faults: replica crashes keyed on per-replica query ordinals,
	// query stragglers, and delta-ship stalls. Failover and hedging
	// mask them; answers are unchanged.
	ServeFaults *ServeFaultPlan
}

// hedgeWindow is the latency ring the hedge threshold is computed
// over; hedgeWarmup is how many samples must land before hedging arms.
const (
	hedgeWindow = 128
	hedgeWarmup = 16
)

// ReplicaSet is a replicated serving tier: N read replicas, each a
// full cube bootstrapped from a snapshot of the leader and advanced by
// applying the leader's committed ingest batches in commit order.
// Reads are load-balanced across the replicas within the staleness
// bound, with cache affinity — repeat queries prefer the replica whose
// result cache already holds them. The leader keeps ingesting through
// its normal Ingest path and never blocks on replica progress.
//
// Because the delta pipeline is deterministic and snapshots re-scatter
// view slices on the leader's partition boundaries, a replica that has
// applied batch k serves exactly what the leader served as of batch k
// — same views, same per-view version counters.
//
// Reads carry a failure policy (ResilienceOptions): a failed attempt
// releases its lease as a breaker strike and retries on a different
// replica with exponential backoff; slow attempts optionally hedge
// onto a second replica; and when no replica can serve — all crashed,
// retired, or beyond the staleness bound past the failover wait — the
// query falls back to the leader's own cube rather than erroring.
// Whatever the fault pattern, answers equal a fault-free run's.
type ReplicaSet struct {
	leader    *Cube
	leaderSrv *Server // fallback server over the leader's cube (nil when disabled)
	group     *replica.Group
	hookID    int
	closed    bool
	n         int
	res       ResilienceOptions

	latMu  sync.Mutex
	lat    [hedgeWindow]time.Duration
	latPos int
	latN   int

	retries      atomic.Int64
	failovers    atomic.Int64
	leaderFalls  atomic.Int64
	hedged       atomic.Int64
	hedgesWon    atomic.Int64
	hedgesLost   atomic.Int64
	serveCrashes atomic.Int64
}

// replicaNode is one replica's serving state: its own cube (loaded
// from a leader snapshot, advanced by shipped batches) and a query
// server with a private result cache and prefix indexes.
type replicaNode struct {
	cube *Cube
	srv  *Server
}

// Apply implements replica.Node: one committed leader batch, rows in
// internal dimension order.
func (n *replicaNode) Apply(rows [][]uint32, meas []int64) error {
	return n.cube.applyShippedBatch(rows, meas)
}

// NewReplicaSet bootstraps a replicated serving tier over the cube.
// The snapshot, the replica bootstraps, and the commit-hook
// registration happen atomically with respect to Ingest, so no batch
// can slip between the snapshot and the delta stream.
func (c *Cube) NewReplicaSet(opts ReplicaOptions) (*ReplicaSet, error) {
	if c.engine == nil {
		return nil, fmt.Errorf("rolap: cube has no cluster (loaded without a machine); cannot replicate")
	}
	n := opts.Replicas
	if n == 0 {
		n = 2
	}
	if n < 1 {
		return nil, fmt.Errorf("rolap: replica set needs at least one replica, got %d", n)
	}
	snapEvery := opts.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 16
	}
	srvOpts := opts.Server

	res := opts.Resilience
	if res.MaxRetries == 0 {
		res.MaxRetries = 3
	}
	if res.MaxRetries < 0 {
		res.MaxRetries = 0
	}
	if res.RetryBackoff == 0 {
		res.RetryBackoff = time.Millisecond
	}
	if res.FailoverWait == 0 {
		res.FailoverWait = 50 * time.Millisecond
	}
	if res.HedgePercentile == 0 {
		res.HedgePercentile = 0.95
	}
	if res.HedgePercentile < 0 || res.HedgePercentile > 1 {
		return nil, fmt.Errorf("rolap: hedge percentile %v out of (0,1]", res.HedgePercentile)
	}
	if res.HedgeFloor == 0 {
		res.HedgeFloor = time.Millisecond
	}

	cfg := replica.Config{
		Replicas:    n,
		MaxLag:      opts.MaxLag,
		Faults:      opts.Faults.internal(),
		ServeFaults: opts.ServeFaults.internal(),
		Breaker: replica.BreakerConfig{
			Threshold: res.BreakerThreshold,
			Cooldown:  res.BreakerCooldown,
		},
		Bootstrap: func(snapshot []byte) (replica.Node, error) {
			cube, err := LoadCube(bytes.NewReader(snapshot))
			if err != nil {
				return nil, err
			}
			srv, err := cube.NewServer(srvOpts)
			if err != nil {
				return nil, err
			}
			return &replicaNode{cube: cube, srv: srv}, nil
		},
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(n); err != nil {
			return nil, fmt.Errorf("rolap: %w", err)
		}
	}
	if cfg.ServeFaults != nil {
		if err := cfg.ServeFaults.Validate(n); err != nil {
			return nil, fmt.Errorf("rolap: %w", err)
		}
	}

	rs := &ReplicaSet{leader: c, n: n, res: res}
	if !res.DisableLeaderFallback {
		srv, err := c.NewServer(srvOpts)
		if err != nil {
			return nil, err
		}
		rs.leaderSrv = srv
	}

	c.ingMu.Lock()
	defer c.ingMu.Unlock()

	// Bootstrap snapshots exclude the leader's pending buffer: those
	// facts are not yet part of any committed batch, and when they
	// commit they arrive at the replicas as a shipped batch — including
	// them here would double count them.
	var buf bytes.Buffer
	if err := c.saveLocked(&buf, false); err != nil {
		return nil, err
	}
	group, err := replica.New(cfg, buf.Bytes(), 0)
	if err != nil {
		return nil, err
	}
	rs.group = group

	rs.hookID = c.addCommitHookLocked(func(rows [][]uint32, meas []int64) {
		seq := group.Commit(rows, meas)
		if snapEvery > 0 && seq%uint64(snapEvery) == 0 {
			// Refresh the bootstrap snapshot at this exact commit: the
			// hook runs under ingMu with the pending buffer just
			// cleared, so the serialized cube is precisely the
			// post-batch-seq state. The gather is leader-local work —
			// it never waits on replica progress.
			var b bytes.Buffer
			if err := c.saveLocked(&b, false); err == nil {
				group.SetSnapshot(b.Bytes(), seq)
			}
		}
	})
	return rs, nil
}

// GroupBy serves an ad-hoc group-by with equality filters from a
// replica within the staleness bound, like Server.GroupBy, with
// failover, hedging, and the leader fallback per ResilienceOptions.
func (r *ReplicaSet) GroupBy(ctx context.Context, dims []string, filters map[string]uint32) (*View, QueryMetrics, error) {
	// Pre-validate on the leader so user errors (unknown dimensions,
	// bad filters) return immediately instead of counting as replica
	// failures and tripping breakers.
	if _, err := r.leader.planQuery(dims, filters, defaultPercentile); err != nil {
		return nil, QueryMetrics{}, err
	}
	out, qm, err := r.resilient(ctx, groupByAffinity(dims, filters), func(srv *Server, ctx context.Context) (any, QueryMetrics, error) {
		v, qm, err := srv.GroupBy(ctx, dims, filters)
		if err != nil {
			return nil, qm, err
		}
		return v, qm, nil
	})
	if err != nil {
		return nil, qm, err
	}
	return out.(*View), qm, nil
}

// Aggregate serves a point lookup from a replica within the staleness
// bound, like Server.Aggregate, with failover, hedging, and the leader
// fallback per ResilienceOptions.
func (r *ReplicaSet) Aggregate(ctx context.Context, dims []string, key []uint32) (int64, QueryMetrics, error) {
	if len(dims) != len(key) {
		return 0, QueryMetrics{}, fmt.Errorf("rolap: %d dims, %d key values", len(dims), len(key))
	}
	lo := append([]uint32(nil), key...)
	hi := append([]uint32(nil), key...)
	return r.RangeAggregate(ctx, dims, lo, hi)
}

// RangeAggregate serves a range aggregate from a replica within the
// staleness bound, like Server.RangeAggregate, with failover, hedging,
// and the leader fallback per ResilienceOptions.
func (r *ReplicaSet) RangeAggregate(ctx context.Context, dims []string, lo, hi []uint32) (int64, QueryMetrics, error) {
	if len(dims) != len(lo) || len(dims) != len(hi) {
		return 0, QueryMetrics{}, fmt.Errorf("rolap: dims/lo/hi length mismatch")
	}
	for k := range lo {
		if lo[k] > hi[k] {
			return 0, QueryMetrics{}, fmt.Errorf("rolap: empty range on %q", dims[k])
		}
	}
	if _, err := r.leader.planRange(dims, lo, hi); err != nil {
		return 0, QueryMetrics{}, err
	}
	out, qm, err := r.resilient(ctx, rangeAffinity(dims, lo, hi), func(srv *Server, ctx context.Context) (any, QueryMetrics, error) {
		v, qm, err := srv.RangeAggregate(ctx, dims, lo, hi)
		if err != nil {
			return nil, qm, err
		}
		return v, qm, nil
	})
	if err != nil {
		return 0, qm, err
	}
	return out.(int64), qm, nil
}

// execFn runs one query attempt against a server (a replica's, or the
// leader fallback's).
type execFn func(srv *Server, ctx context.Context) (any, QueryMetrics, error)

// errFailoverWait distinguishes "no replica became eligible within the
// failover wait" from the caller's own deadline expiring.
var errFailoverWait = errors.New("rolap: no replica available within the failover wait")

// replicaIndicting reports whether a read error indicts the replica
// that served it (crash, execution failure) — as opposed to overload
// or the caller's own deadline, which are not the replica's fault and
// must not trip its breaker.
func replicaIndicting(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrServerOverloaded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// retryableRead reports whether a failed attempt is worth retrying on
// a different replica: replica-indicting failures and overload (the
// next replica's queue may be free). Deadline and cancellation are
// final — there is no time left to retry into.
func retryableRead(err error) bool {
	return replicaIndicting(err) || errors.Is(err, ErrServerOverloaded)
}

// resilient is the serving path's failure policy around one query:
// acquire a replica, run the attempt (hedged when configured), and on
// a retryable failure mark the replica in the avoid set and fail over
// with exponential backoff, up to MaxRetries. When replicas are
// exhausted — retries spent, all permanently failed, or none eligible
// within FailoverWait — the query is served by the leader's own cube
// (unless DisableLeaderFallback).
func (r *ReplicaSet) resilient(ctx context.Context, affinity uint64, exec execFn) (any, QueryMetrics, error) {
	avoid := make([]bool, r.n)
	attempts := 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, QueryMetrics{}, err
		}
		lease, err := r.acquireLease(ctx, affinity, avoid)
		if err != nil {
			var sc *replica.ServeCrashError
			switch {
			case errors.As(err, &sc):
				// The picked replica died as the read was dispatched
				// (injected serve crash): fail over immediately.
				r.serveCrashes.Add(1)
				r.retries.Add(1)
				attempts++
				if attempts <= r.res.MaxRetries {
					continue
				}
				return r.leaderFallback(ctx, exec, err)
			case errors.Is(err, replica.ErrAllFailed):
				return r.leaderFallback(ctx, exec, err)
			case errors.Is(err, errFailoverWait):
				if anyTrue(avoid) {
					// The avoided replicas' queues may have drained since
					// they failed us; give the full set one more chance
					// before abandoning replicas entirely.
					clear(avoid)
					continue
				}
				return r.leaderFallback(ctx, exec, lastErr)
			default:
				return nil, QueryMetrics{}, err
			}
		}
		out, qm, err := r.attempt(ctx, lease, exec, affinity, avoid)
		if err == nil {
			if attempts > 0 {
				r.failovers.Add(1)
			}
			return out, qm, nil
		}
		lastErr = err
		if !retryableRead(err) || ctx.Err() != nil {
			return nil, qm, err
		}
		attempts++
		r.retries.Add(1)
		if attempts > r.res.MaxRetries {
			return r.leaderFallback(ctx, exec, lastErr)
		}
		if d := r.backoff(attempts); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, QueryMetrics{}, ctx.Err()
			}
		}
	}
}

// acquireLease bounds the wait for an eligible replica by FailoverWait
// when the leader fallback is available, so a fleet-wide outage
// degrades to leader reads instead of queries waiting out their
// deadlines.
func (r *ReplicaSet) acquireLease(ctx context.Context, affinity uint64, avoid []bool) (*replica.Lease, error) {
	actx := ctx
	if r.leaderSrv != nil && r.res.FailoverWait > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, r.res.FailoverWait)
		defer cancel()
	}
	l, err := r.group.Acquire(actx, affinity, avoid)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		return nil, errFailoverWait
	}
	return l, err
}

// attempt runs one leased attempt, hedging a second replica when the
// first is slower than the observed latency percentile. Failed
// replicas are marked in the avoid set for the caller's next retry.
func (r *ReplicaSet) attempt(ctx context.Context, lease *replica.Lease, exec execFn, affinity uint64, avoid []bool) (any, QueryMetrics, error) {
	ch := make(chan attemptResult, 2)
	r.launch(ctx, lease, exec, false, ch)
	launched := 1
	var hedgeC <-chan time.Time
	if r.res.Hedge {
		if d := r.hedgeThreshold(); d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	for got := 0; ; {
		select {
		case res := <-ch:
			got++
			if res.err == nil {
				r.recordLatency(res.dur)
				if launched == 2 {
					if res.hedge {
						r.hedgesWon.Add(1)
					} else {
						r.hedgesLost.Add(1)
					}
				}
				return res.out, res.qm, nil
			}
			if retryableRead(res.err) {
				avoid[res.replica] = true
			}
			if got == launched {
				return res.out, res.qm, res.err
			}
			// One attempt failed but the other is still in flight: its
			// success can still win the query.
		case <-hedgeC:
			hedgeC = nil
			havoid := make([]bool, len(avoid))
			copy(havoid, avoid)
			havoid[lease.Replica()] = true
			// Hedge only if a second replica is admittable right now —
			// a hedge that queues behind the same congestion is pure
			// added load.
			if l2, ok := r.group.TryAcquire(affinity, havoid); ok {
				launched = 2
				r.hedged.Add(1)
				r.launch(ctx, l2, exec, true, ch)
			}
		case <-ctx.Done():
			// In-flight attempts see the same ctx, finish, and release
			// their leases; the buffered channel absorbs their results.
			return nil, QueryMetrics{}, ctx.Err()
		}
	}
}

type attemptResult struct {
	out     any
	qm      QueryMetrics
	err     error
	replica int
	hedge   bool
	dur     time.Duration
}

// launch runs one attempt on its leased replica in a goroutine,
// sleeping any injected straggler delay first (the replica is slow,
// not broken), and releases the lease with the attempt's verdict.
func (r *ReplicaSet) launch(ctx context.Context, lease *replica.Lease, exec execFn, hedge bool, ch chan attemptResult) {
	go func() {
		start := time.Now()
		var out any
		var qm QueryMetrics
		err := ctx.Err()
		if err == nil {
			if d := lease.Delay(); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					err = ctx.Err()
				}
			}
		}
		if err == nil {
			out, qm, err = exec(lease.Node().(*replicaNode).srv, ctx)
		}
		lease.Release(replicaIndicting(err))
		ch <- attemptResult{out: out, qm: qm, err: err, replica: lease.Replica(), hedge: hedge, dur: time.Since(start)}
	}()
}

// leaderFallback serves the query from the leader's own cube — the
// last rung before an error. cause is returned instead when fallback
// is disabled.
func (r *ReplicaSet) leaderFallback(ctx context.Context, exec execFn, cause error) (any, QueryMetrics, error) {
	if r.leaderSrv == nil {
		if cause == nil {
			cause = errFailoverWait
		}
		return nil, QueryMetrics{}, cause
	}
	r.leaderFalls.Add(1)
	return exec(r.leaderSrv, ctx)
}

// backoff is the exponential failover backoff for retry k (1-based),
// capped at 100ms.
func (r *ReplicaSet) backoff(k int) time.Duration {
	d := r.res.RetryBackoff
	for i := 1; i < k && d < 100*time.Millisecond; i++ {
		d *= 2
	}
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// hedgeThreshold is the current hedge trigger: the HedgePercentile of
// the last hedgeWindow successful attempt latencies, floored at
// HedgeFloor; 0 (hedging disarmed) until hedgeWarmup samples land.
func (r *ReplicaSet) hedgeThreshold() time.Duration {
	r.latMu.Lock()
	defer r.latMu.Unlock()
	if r.latN < hedgeWarmup {
		return 0
	}
	n := r.latN
	if n > hedgeWindow {
		n = hedgeWindow
	}
	buf := make([]time.Duration, n)
	copy(buf, r.lat[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(float64(n-1) * r.res.HedgePercentile)
	d := buf[idx]
	if d < r.res.HedgeFloor {
		d = r.res.HedgeFloor
	}
	return d
}

// recordLatency feeds one successful attempt's wall time into the
// hedge-threshold ring. Failures are excluded on purpose: a crash
// that fails in microseconds would drag the percentile down and set
// off hedge storms.
func (r *ReplicaSet) recordLatency(d time.Duration) {
	r.latMu.Lock()
	r.lat[r.latPos] = d
	r.latPos = (r.latPos + 1) % hedgeWindow
	r.latN++
	r.latMu.Unlock()
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// WaitCaughtUp blocks until every non-failed replica has applied the
// leader's last committed batch, or ctx expires.
func (r *ReplicaSet) WaitCaughtUp(ctx context.Context) error {
	return r.group.WaitCaughtUp(ctx)
}

// CrashReplica takes replica i down as if it had failed; its shipper
// re-bootstraps it from the latest snapshot and replays the delta log.
func (r *ReplicaSet) CrashReplica(i int) error {
	return r.group.Crash(i)
}

// RetireReplica permanently removes replica i from service — no
// re-bootstrap, no routing; in-flight reads drain normally. With every
// replica retired, reads fall back to the leader (or fail, with
// DisableLeaderFallback).
func (r *ReplicaSet) RetireReplica(i int) error {
	return r.group.Retire(i)
}

// Stats snapshots the replica set's replication and serving counters.
func (r *ReplicaSet) Stats() ReplicaSetStats {
	gs := r.group.Stats()
	s := ReplicaSetStats{
		LeaderSeq:         gs.LeaderSeq,
		SnapshotSeq:       gs.SnapSeq,
		DeltaLogLen:       gs.LogLen,
		Routed:            gs.Routed,
		StalenessWaits:    gs.Waits,
		SnapshotShipBytes: gs.SnapshotShipBytes,
		DeltaShipBytes:    gs.DeltaShipBytes,
		Resilience: ResilienceStats{
			Retries:         r.retries.Load(),
			Failovers:       r.failovers.Load(),
			LeaderFallbacks: r.leaderFalls.Load(),
			HedgesLaunched:  r.hedged.Load(),
			HedgesWon:       r.hedgesWon.Load(),
			HedgesLost:      r.hedgesLost.Load(),
			ServeCrashes:    r.serveCrashes.Load(),
			BreakerOpens:    gs.BreakerOpens,
			BreakerProbes:   gs.BreakerProbes,
			BreakerCloses:   gs.BreakerCloses,
		},
	}
	for _, rep := range gs.Replicas {
		rs := ReplicaStats{
			State:      rep.State,
			Breaker:    rep.Breaker,
			Applied:    rep.Applied,
			Lag:        rep.Lag,
			Routed:     rep.Routed,
			Bootstraps: rep.Bootstraps,
			Crashes:    rep.Crashes,
		}
		if node, ok := rep.Node.(*replicaNode); ok && node != nil {
			rs.Server = node.srv.Stats()
		}
		s.Replicas = append(s.Replicas, rs)
	}
	if r.leaderSrv != nil {
		s.LeaderServer = r.leaderSrv.Stats()
	}
	return s
}

// Close detaches the replica set from the leader's commit stream and
// stops the shipping goroutines. The leader keeps ingesting; in-flight
// reads drain normally.
func (r *ReplicaSet) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.leader.removeCommitHook(r.hookID)
	r.group.Close()
}

// groupByAffinity hashes a group-by request into a stable routing
// affinity, so repeat queries land on the replica whose result cache
// already holds them. Filters are folded in sorted key order to keep
// the hash independent of map iteration.
func groupByAffinity(dims []string, filters map[string]uint32) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "g")
	for _, d := range dims {
		io.WriteString(h, "|")
		io.WriteString(h, d)
	}
	names := make([]string, 0, len(filters))
	for name := range filters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "#%s=%d", name, filters[name])
	}
	return nonzero(h.Sum64())
}

// rangeAffinity hashes a range-aggregate request into a stable routing
// affinity.
func rangeAffinity(dims []string, lo, hi []uint32) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "s")
	for _, d := range dims {
		io.WriteString(h, "|")
		io.WriteString(h, d)
	}
	for k := range lo {
		fmt.Fprintf(h, "#%d..%d", lo[k], hi[k])
	}
	return nonzero(h.Sum64())
}

// nonzero keeps a hash out of the "no affinity" sentinel.
func nonzero(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}
