package rolap

import (
	"bytes"
	"strings"
	"testing"
)

const salesCSV = `region,product,quarter,measure
east,widget,Q1,100
east,widget,Q2,150
east,gadget,Q1,80
west,widget,Q1,200
west,gadget,Q3,60
west,gadget,Q3,40
`

func TestLoadCSV(t *testing.T) {
	in, err := LoadCSV(strings.NewReader(salesCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 6 {
		t.Fatalf("rows = %d, want 6", in.Len())
	}
	schema := in.Schema()
	if len(schema.Dimensions) != 3 {
		t.Fatalf("dims = %v", schema.Dimensions)
	}
	// Observed cardinalities: region 2, product 2, quarter 3.
	byName := map[string]int{}
	for _, d := range schema.Dimensions {
		byName[d.Name] = d.Cardinality
	}
	if byName["region"] != 2 || byName["product"] != 2 || byName["quarter"] != 3 {
		t.Fatalf("cardinalities wrong: %v", byName)
	}
	// Dictionary round trips.
	code, ok := in.CodeOf("region", "west")
	if !ok || in.Decode("region", code) != "west" {
		t.Fatal("dictionary round trip failed")
	}
	if vals := in.DimensionValues("quarter"); len(vals) != 3 || vals[0] != "Q1" {
		t.Fatalf("DimensionValues = %v", vals)
	}
	if _, ok := in.CodeOf("region", "north"); ok {
		t.Fatal("phantom value decoded")
	}
}

func TestCSVBuildAndQueryByName(t *testing.T) {
	in, err := LoadCSV(strings.NewReader(salesCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	east, _ := in.CodeOf("region", "east")
	got, err := cube.Aggregate([]string{"region"}, []uint32{east})
	if err != nil || got != 330 {
		t.Fatalf("east total = %d (%v), want 330", got, err)
	}
	q3, _ := in.CodeOf("quarter", "Q3")
	got, err = cube.Aggregate([]string{"quarter"}, []uint32{q3})
	if err != nil || got != 100 {
		t.Fatalf("Q3 total = %d (%v), want 100", got, err)
	}
}

func TestViewWriteCSV(t *testing.T) {
	in, err := LoadCSV(strings.NewReader(salesCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cube.View([]string{"region", "product"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vw.WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 { // header + 4 (region,product) groups
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "measure") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if !strings.Contains(out, "east,widget,250") && !strings.Contains(out, "widget,east,250") {
		t.Fatalf("expected east/widget=250 group:\n%s", out)
	}
}

func TestLoadCSVNoMeasureColumn(t *testing.T) {
	// Without a measure column every row counts 1.
	csvData := "a,b\nx,1\nx,2\ny,1\n"
	in, err := LoadCSV(strings.NewReader(csvData), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := in.CodeOf("a", "x")
	got, err := cube.Aggregate([]string{"a"}, []uint32{x})
	if err != nil || got != 2 {
		t.Fatalf("count(x) = %d (%v), want 2", got, err)
	}
}

func TestLoadCSVCustomDelimiterAndMeasure(t *testing.T) {
	csvData := "city;qty\nparis;5\nparis;7\n"
	in, err := LoadCSV(strings.NewReader(csvData), CSVOptions{Comma: ';', MeasureColumn: "qty"})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	total, _ := cube.Aggregate(nil, nil)
	if total != 12 {
		t.Fatalf("total = %d, want 12", total)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []string{
		"",                   // no header
		"measure\n5\n",       // no dimensions
		"a,measure\nx\n",     // short record is a csv error
		"a,measure\nx,nan\n", // bad measure
	}
	for i, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c), CSVOptions{}); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDecodeWithoutDictionaries(t *testing.T) {
	in, _ := NewInput(testSchema())
	if got := in.Decode("store", 7); got != "7" {
		t.Fatalf("Decode = %q", got)
	}
	if in.DimensionValues("store") != nil {
		t.Fatal("expected nil values without dictionaries")
	}
	if _, ok := in.CodeOf("store", "7"); ok {
		t.Fatal("CodeOf should fail without dictionaries")
	}
}

func TestSortedNamesHelper(t *testing.T) {
	in := []string{"b", "a"}
	out := sortedNames(in)
	if out[0] != "a" || in[0] != "b" {
		t.Fatal("sortedNames must not mutate input")
	}
}

func TestIngestCSV(t *testing.T) {
	in, err := LoadCSV(strings.NewReader(salesCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Columns deliberately permuted relative to the build CSV.
	batch := "quarter,measure,region,product\nQ2,70,west,widget\nQ1,30,east,gadget\n"
	im, err := cube.IngestCSV(strings.NewReader(batch), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if im.Rows != 2 {
		t.Fatalf("ingested %d rows, want 2", im.Rows)
	}
	east, _ := in.CodeOf("region", "east")
	gadget, _ := in.CodeOf("product", "gadget")
	got, err := cube.Aggregate([]string{"region", "product"}, []uint32{east, gadget})
	if err != nil {
		t.Fatal(err)
	}
	if got != 80+30 {
		t.Fatalf("east/gadget = %d after ingest, want 110", got)
	}

	// Unknown dictionary value, missing column, bad measure: the whole
	// batch is rejected and the cube stays unchanged.
	bad := []string{
		"region,product,quarter,measure\nnorth,widget,Q1,10\n", // unknown value
		"region,product,measure\neast,widget,10\n",             // missing quarter
		"region,product,quarter,measure\neast,widget,Q1,nan\n", // bad measure
		"region,product,quarter,region,measure\ne,w,Q1,e,1\n",  // repeated column
	}
	for i, b := range bad {
		if _, err := cube.IngestCSV(strings.NewReader(b), CSVOptions{}); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	if got2, _ := cube.Aggregate([]string{"region", "product"}, []uint32{east, gadget}); got2 != 110 {
		t.Fatalf("cube changed by rejected batches: %d", got2)
	}
	if cube.Pending() != 0 {
		t.Fatalf("rejected batches left %d rows pending", cube.Pending())
	}
}

func TestLoadCSVDictionaryDeterminism(t *testing.T) {
	// The same logical fact table in different physical row orders must
	// produce identical dictionaries and codes: freeze-time reordering
	// assigns codes canonically (frequency descending, value ascending),
	// not by first appearance.
	lines := []string{
		"east,widget,Q1,100",
		"east,widget,Q2,150",
		"east,gadget,Q1,80",
		"west,widget,Q1,200",
		"west,gadget,Q3,60",
		"west,gadget,Q3,40",
	}
	perms := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{2, 5, 0, 3, 1, 4},
	}
	var want *Input
	for pi, perm := range perms {
		var b strings.Builder
		b.WriteString("region,product,quarter,measure\n")
		for _, i := range perm {
			b.WriteString(lines[i])
			b.WriteByte('\n')
		}
		in, err := LoadCSV(strings.NewReader(b.String()), CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = in
			continue
		}
		for _, d := range in.Schema().Dimensions {
			got := in.DimensionValues(d.Name)
			ref := want.DimensionValues(d.Name)
			if len(got) != len(ref) {
				t.Fatalf("perm %d: %s dictionary sizes differ", pi, d.Name)
			}
			for c := range got {
				if got[c] != ref[c] {
					t.Fatalf("perm %d: %s code %d = %q, want %q (order-dependent dictionary)",
						pi, d.Name, c, got[c], ref[c])
				}
			}
		}
	}
	// Codes are frequency-ordered: the hottest value gets code 0, and
	// ties break by value ascending. quarter frequencies: Q1 x3, Q3 x2,
	// Q2 x1.
	if vals := want.DimensionValues("quarter"); vals[0] != "Q1" || vals[1] != "Q3" || vals[2] != "Q2" {
		t.Fatalf("quarter codes not frequency-ordered: %v", vals)
	}
	// product ties at 3/3: value-ascending puts gadget before widget.
	if vals := want.DimensionValues("product"); vals[0] != "gadget" || vals[1] != "widget" {
		t.Fatalf("product tie-break wrong: %v", vals)
	}
}
