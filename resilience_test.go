package rolap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/record"
)

// chaosWorkload is a fixed, deterministic query mix over the test
// schema: a rotation of range aggregates, point lookups, and group-bys.
// The same workload run against any serving tier over the same facts
// must produce the same answer transcript.
func chaosWorkload(t *testing.T, ctx context.Context, rs *ReplicaSet, n int) []string {
	t.Helper()
	var answers []string
	for k := 0; k < n; k++ {
		switch k % 3 {
		case 0:
			got, _, err := rs.Aggregate(ctx, []string{"month", "channel"}, []uint32{uint32(k % 12), uint32(k % 3)})
			if err != nil {
				t.Fatalf("query %d (aggregate): %v", k, err)
			}
			answers = append(answers, fmt.Sprintf("a%d=%d", k, got))
		case 1:
			got, _, err := rs.RangeAggregate(ctx, []string{"store"}, []uint32{uint32(k % 20)}, []uint32{uint32(k%20) + 10})
			if err != nil {
				t.Fatalf("query %d (range): %v", k, err)
			}
			answers = append(answers, fmt.Sprintf("r%d=%d", k, got))
		default:
			vw, _, err := rs.GroupBy(ctx, []string{"month"}, map[string]uint32{"channel": uint32(k % 3)})
			if err != nil {
				t.Fatalf("query %d (groupby): %v", k, err)
			}
			var rows string
			for i := 0; i < vw.Len(); i++ {
				key, m := vw.Row(i)
				rows += fmt.Sprintf("(%v:%d)", key, m)
			}
			answers = append(answers, fmt.Sprintf("g%d=%s", k, rows))
		}
	}
	return answers
}

// TestChaosAnswersMatchFaultFreeRun is the determinism acceptance
// test: the same sequential workload over the same facts, once on a
// fault-free replica set and once under a serving-time fault plan
// (crash loop, stragglers, a ship stall), must produce byte-identical
// answers. Faults move queries around; they never change results.
func TestChaosAnswersMatchFaultFreeRun(t *testing.T) {
	const queries = 30
	run := func(plan *ServeFaultPlan) ([]string, ReplicaSetStats) {
		rows, meas := randomFacts(600, 997)
		base := 400
		leader := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
		rs, err := leader.NewReplicaSet(ReplicaOptions{
			Replicas:    2,
			ServeFaults: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		for lo := base; lo < len(rows); lo += 50 {
			if _, err := leader.Ingest(rows[lo:lo+50], meas[lo:lo+50]); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := rs.WaitCaughtUp(ctx); err != nil {
			t.Fatal(err)
		}
		answers := chaosWorkload(t, ctx, rs, queries)
		return answers, rs.Stats()
	}

	clean, _ := run(nil)
	chaos, st := run(&ServeFaultPlan{
		Crashes: ServeCrashLoop(1, 3, 5, 2),
		Stragglers: []ServeStraggler{
			{Replica: 0, FromQuery: 2, ToQuery: 4, DelaySeconds: 0.02},
		},
		Stalls: []ShipStall{{Replica: 0, Batch: 2, DelaySeconds: 0.05}},
	})

	if len(clean) != len(chaos) {
		t.Fatalf("answer counts differ: %d vs %d", len(clean), len(chaos))
	}
	for i := range clean {
		if clean[i] != chaos[i] {
			t.Fatalf("answer %d differs under chaos:\nfault-free: %s\nchaos:      %s", i, clean[i], chaos[i])
		}
	}
	// The plan must actually have fired — a vacuously green run proves
	// nothing.
	if st.Resilience.ServeCrashes == 0 {
		t.Fatalf("no injected serve crash observed: %+v", st.Resilience)
	}
	if st.Resilience.Failovers == 0 && st.Resilience.LeaderFallbacks == 0 {
		t.Fatalf("crashes fired but nothing failed over: %+v", st.Resilience)
	}
}

// TestLeaderFallbackWhenAllReplicasOut is the regression test for the
// last rung: with every replica retired, reads are served by the
// leader's own cube (counted in LeaderFallbacks) instead of erroring.
func TestLeaderFallbackWhenAllReplicasOut(t *testing.T) {
	rows, meas := randomFacts(400, 1009)
	leader := buildFromFacts(t, rows, meas, Options{Processors: 2})
	rs, err := leader.NewReplicaSet(ReplicaOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	var want int64
	for _, m := range meas {
		want += m
	}
	ctx := context.Background()
	if err := rs.RetireReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := rs.RetireReplica(1); err != nil {
		t.Fatal(err)
	}
	got, _, err := rs.Aggregate(ctx, nil, nil)
	if err != nil {
		t.Fatalf("read with all replicas retired: %v", err)
	}
	if got != want {
		t.Fatalf("leader-fallback total %d, want %d", got, want)
	}
	st := rs.Stats()
	if st.Resilience.LeaderFallbacks != 1 {
		t.Fatalf("LeaderFallbacks = %d, want 1", st.Resilience.LeaderFallbacks)
	}
	if st.LeaderServer.Queries != 1 {
		t.Fatalf("leader fallback server served %d queries, want 1", st.LeaderServer.Queries)
	}

	// With fallback disabled the same situation is an error, not a hang.
	rs2, err := leader.NewReplicaSet(ReplicaOptions{
		Replicas:   1,
		Resilience: ResilienceOptions{DisableLeaderFallback: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if err := rs2.RetireReplica(0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, _, err := rs2.Aggregate(tctx, nil, nil); err == nil {
		t.Fatal("read served with all replicas retired and fallback disabled")
	}
	if time.Since(start) > time.Second {
		t.Fatal("all-retired read blocked instead of failing fast")
	}
}

// TestServerCoalescesStampede pins single-flight: a flash crowd of
// identical queries rides one execution, consuming one queue slot —
// without coalescing the same crowd sheds almost everything.
func TestServerCoalescesStampede(t *testing.T) {
	const crowd = 8
	cube, _ := buildServedCube(t, 300, 2)

	s, err := cube.NewServer(ServerOptions{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.sem <- struct{}{} // wedge the only worker while the crowd gathers
	var wg sync.WaitGroup
	errs := make(chan error, crowd)
	var tables [crowd]*View
	for k := 0; k < crowd; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			vw, _, err := s.GroupBy(context.Background(), []string{"month"}, nil)
			if err != nil {
				errs <- fmt.Errorf("crowd member %d: %w", k, err)
				return
			}
			tables[k] = vw
		}(k)
	}
	time.Sleep(100 * time.Millisecond) // let the crowd park: 1 in queue, rest on the flight
	<-s.sem
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for k := 1; k < crowd; k++ {
		if !record.Equal(tables[0].rows, tables[k].rows) {
			t.Fatalf("crowd member %d got different rows", k)
		}
	}
	st := s.Stats()
	if st.Rejected != 0 {
		t.Fatalf("coalesced stampede shed %d queries", st.Rejected)
	}
	if st.Queries != crowd || st.Coalesced != crowd-1 {
		t.Fatalf("stats = %+v, want %d queries / %d coalesced", st, crowd, crowd-1)
	}

	// Control: the identical stampede without single-flight floods the
	// queue and sheds (no cached entry to degrade onto).
	s2, err := cube.NewServer(ServerOptions{Workers: 1, QueueDepth: 1, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	s2.sem <- struct{}{}
	var shed int64
	var wg2 sync.WaitGroup
	var mu sync.Mutex
	for k := 0; k < crowd; k++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			_, _, err := s2.GroupBy(context.Background(), []string{"month"}, nil)
			if errors.Is(err, ErrServerOverloaded) {
				mu.Lock()
				shed++
				mu.Unlock()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	<-s2.sem
	wg2.Wait()
	if shed < crowd-2 { // 1 executes, 1 queues, the rest must shed
		t.Fatalf("uncoalesced stampede shed only %d of %d", shed, crowd)
	}
	if got := s2.Stats().QueueFullRejects; got != shed {
		t.Fatalf("QueueFullRejects = %d, want %d", got, shed)
	}
}

// TestServerStaleServeLadder pins the overload shed ladder: an
// overloaded query is answered from the cache within StaleLimit ingest
// batches first, then (queue-full only) at any staleness, and only
// rejected when no rung applies.
func TestServerStaleServeLadder(t *testing.T) {
	rows, meas := randomFacts(700, 1013)
	base := 400
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
	s, err := cube.NewServer(ServerOptions{Workers: 1, QueueDepth: -1, StaleLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Prime the cache with the grand total, then land one ingest batch:
	// the entry is now exactly 1 version stale.
	var primed int64
	for _, m := range meas[:base] {
		primed += m
	}
	if got, _, err := s.Aggregate(ctx, nil, nil); err != nil || got != primed {
		t.Fatalf("prime: %d (%v), want %d", got, err, primed)
	}
	if _, err := cube.Ingest(rows[base:base+100], meas[base:base+100]); err != nil {
		t.Fatal(err)
	}

	// Hard overload, rung 1: the 1-stale entry is within the bound.
	s.sem <- struct{}{}
	got, qm, err := s.Aggregate(ctx, nil, nil)
	if err != nil {
		t.Fatalf("overloaded query not rescued: %v", err)
	}
	if got != primed {
		t.Fatalf("stale serve returned %d, want the cached pre-batch total %d", got, primed)
	}
	if !qm.CacheHit || qm.StaleVersions != 1 {
		t.Fatalf("stale-serve metrics = %+v, want CacheHit with StaleVersions 1", qm)
	}
	if st := s.Stats(); st.StaleServes != 1 || st.Rejected != 0 {
		t.Fatalf("after rung 1: %+v", st)
	}

	// A second batch puts the entry beyond StaleLimit: hard overload
	// widens the bound (rung 2) instead of rejecting.
	<-s.sem
	if _, err := cube.Ingest(rows[base+100:base+200], meas[base+100:base+200]); err != nil {
		t.Fatal(err)
	}
	s.sem <- struct{}{}
	got, qm, err = s.Aggregate(ctx, nil, nil)
	if err != nil {
		t.Fatalf("widened rung not taken: %v", err)
	}
	if got != primed || qm.StaleVersions != 2 {
		t.Fatalf("widened serve = %d (stale %d), want %d (stale 2)", got, qm.StaleVersions, primed)
	}
	if st := s.Stats(); st.StaleWidened != 1 {
		t.Fatalf("after rung 2: %+v", st)
	}

	// A different query with no cached entry has no rung: typed
	// queue-full rejection with operational context attached.
	_, _, err = s.Aggregate(ctx, []string{"store"}, []uint32{3})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("uncached overloaded query: err = %v, want *OverloadError", err)
	}
	if oe.Reason != OverloadQueueFull || oe.RetryAfter <= 0 {
		t.Fatalf("typed rejection = %+v", oe)
	}
	if !errors.Is(err, ErrServerOverloaded) {
		t.Fatal("typed rejection does not match ErrServerOverloaded")
	}
	if st := s.Stats(); st.QueueFullRejects != 1 || st.Rejected != 1 {
		t.Fatalf("after rejection: %+v", st)
	}
	<-s.sem
}

// TestServerQueueDeadlineTyped pins the deadline-in-queue rejection:
// typed separately from queue-full, still matching the context error,
// and refusing the widened staleness rung (a deadline caller asked for
// freshness bounds, not best-effort).
func TestServerQueueDeadlineTyped(t *testing.T) {
	rows, meas := randomFacts(800, 1019)
	base := 400
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
	s, err := cube.NewServer(ServerOptions{Workers: 1, QueueDepth: 4, StaleLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Prime, then make the entry 2-stale (beyond StaleLimit).
	if _, _, err := s.Aggregate(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Ingest(rows[base:base+100], meas[base:base+100]); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Ingest(rows[base+100:base+200], meas[base+100:base+200]); err != nil {
		t.Fatal(err)
	}

	s.sem <- struct{}{} // wedge: the query queues, then its deadline expires
	tctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	_, _, err = s.Aggregate(tctx, nil, nil)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != OverloadQueueDeadline {
		t.Fatalf("err = %v, want queue-deadline *OverloadError", err)
	}
	if !errors.Is(err, ErrServerOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queue-deadline rejection must match both sentinels: %v", err)
	}
	st := s.Stats()
	if st.QueueDeadlineRejects != 1 || st.Expired != 1 || st.QueueFullRejects != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StaleWidened != 0 {
		t.Fatal("deadline rejection took the widened rung")
	}
	<-s.sem

	// Within the limit the ladder does rescue a deadline query: make the
	// entry 1-stale and repeat.
	if _, _, err := s.Aggregate(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Ingest(rows[base+200:base+300], meas[base+200:base+300]); err != nil {
		t.Fatal(err)
	}
	s.sem <- struct{}{}
	tctx2, cancel2 := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel2()
	if _, qm, err := s.Aggregate(tctx2, nil, nil); err != nil || qm.StaleVersions != 1 {
		t.Fatalf("deadline query within the bound: %+v err=%v, want 1-stale rescue", qm, err)
	}
	<-s.sem
}

// TestReplicaSetHedgedRequests: with one replica straggling, hedged
// reads launch on the healthy replica and win, keeping answers
// correct.
func TestReplicaSetHedgedRequests(t *testing.T) {
	rows, meas := randomFacts(500, 1021)
	leader := buildFromFacts(t, rows, meas, Options{Processors: 2})
	rs, err := leader.NewReplicaSet(ReplicaOptions{
		Replicas:   2,
		Resilience: ResilienceOptions{Hedge: true},
		ServeFaults: &ServeFaultPlan{Stragglers: []ServeStraggler{
			// Every read on replica 0 past its warmup share is slow.
			{Replica: 0, FromQuery: 12, ToQuery: 100000, DelaySeconds: 0.1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ctx := context.Background()

	// Mixed warmup + straggler-era reads. Distinct keys defeat both
	// caches, so every read executes; once replica 0's ordinal passes
	// 12, any read routed there stalls 100ms and the hedge (threshold
	// floored at 1ms after warmup) fires on replica 1.
	var want int64
	for _, m := range meas {
		want += m
	}
	for k := 0; k < 40; k++ {
		got, _, err := rs.RangeAggregate(ctx, []string{"store"}, []uint32{0}, []uint32{uint32(k)%38 + 1})
		if err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
		if full, _, err := rs.Aggregate(ctx, nil, nil); err != nil || full != want {
			t.Fatalf("read %d: grand total %d (%v), want %d", k, full, err, want)
		}
		_ = got
	}
	st := rs.Stats()
	if st.Resilience.HedgesLaunched == 0 {
		t.Fatalf("no hedges launched against a straggling replica: %+v", st.Resilience)
	}
	if st.Resilience.HedgesWon == 0 {
		t.Fatalf("hedges launched but none won against a 100ms straggler: %+v", st.Resilience)
	}
}

// TestReplicaSetCrashLoopBreakerOpens: a crash-looping replica trips
// its breaker (each injected crash is a breaker strike), and the set
// keeps answering correctly throughout.
func TestReplicaSetCrashLoopBreakerOpens(t *testing.T) {
	rows, meas := randomFacts(500, 1031)
	leader := buildFromFacts(t, rows, meas, Options{Processors: 2})
	rs, err := leader.NewReplicaSet(ReplicaOptions{
		Replicas:    2,
		Resilience:  ResilienceOptions{BreakerThreshold: 1, BreakerCooldown: 10 * time.Second},
		ServeFaults: &ServeFaultPlan{Crashes: ServeCrashLoop(1, 1, 1, 50)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ctx := context.Background()

	var want int64
	for _, m := range meas {
		want += m
	}
	// Distinct range keys spread affinity homes across both replicas,
	// so the crash loop on replica 1 is guaranteed routed reads.
	for k := 0; k < 30; k++ {
		got, _, err := rs.RangeAggregate(ctx, []string{"store"}, []uint32{uint32(k % 5)}, []uint32{uint32(k)%30 + 5})
		if err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
		_ = got
	}
	st := rs.Stats()
	if st.Resilience.BreakerOpens == 0 {
		t.Fatalf("crash loop never opened the breaker: %+v", st.Resilience)
	}
	if st.Replicas[1].Breaker != "open" {
		t.Fatalf("crash-looping replica's breaker = %s, want open (stats %+v)", st.Replicas[1].Breaker, st.Replicas[1])
	}
	// Correctness held the whole time.
	got, _, err := rs.Aggregate(ctx, nil, nil)
	if err != nil || got != want {
		t.Fatalf("final total %d (%v), want %d", got, err, want)
	}
}
