package rolap

// Ablation benchmarks for the design choices DESIGN.md calls out:
// estimator kind, partial-cube planner, schedule-tree mode, balance
// thresholds, and the hardware model. Each reports simulated seconds
// so the tradeoffs can be compared directly.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/partialcube"
	"repro/internal/workpart"
)

func ablationSpec() gen.Spec {
	return gen.Spec{N: 40_000, D: 8, Cards: gen.PaperCards(), Seed: 1}
}

func runAblation(b *testing.B, params costmodel.Params, cfg core.Config) core.Metrics {
	b.Helper()
	spec := ablationSpec()
	g := gen.New(spec)
	p := 8
	m := cluster.New(p, params)
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	met, err := core.BuildCube(m, "raw", cfg)
	if err != nil {
		b.Fatal(err)
	}
	return met
}

// BenchmarkAblationEstimators compares Cardenas-formula against
// Flajolet–Martin view-size estimation (planning quality vs planning
// cost).
func BenchmarkAblationEstimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		card := runAblation(b, costmodel.Default(), core.Config{D: 8, Estimator: core.CardenasEstimator})
		fm := runAblation(b, costmodel.Default(), core.Config{D: 8, Estimator: core.FMEstimator})
		b.ReportMetric(card.SimSeconds, "cardenas-sim-sec")
		b.ReportMetric(fm.SimSeconds, "fm-sim-sec")
		b.ReportMetric(fm.PhaseSeconds["plan"], "fm-plan-sec")
	}
}

// BenchmarkAblationPartialPlanners compares the pruned-Pipesort and
// greedy partial-cube planners on a low-dimensional dashboard
// selection.
func BenchmarkAblationPartialPlanners(b *testing.B) {
	sel := partialcube.SelectPercent(8, 25, 1)
	for i := 0; i < b.N; i++ {
		pruned := runAblation(b, costmodel.Default(), core.Config{D: 8, Selected: sel, Partial: partialcube.Pruned})
		greedy := runAblation(b, costmodel.Default(), core.Config{D: 8, Selected: sel, Partial: partialcube.Greedy})
		b.ReportMetric(pruned.SimSeconds, "pruned-sim-sec")
		b.ReportMetric(greedy.SimSeconds, "greedy-sim-sec")
	}
}

// BenchmarkAblationHardware compares the 2003 Beowulf model against a
// modern cluster: on modern hardware the build is orders of magnitude
// faster and the balance-threshold tradeoff flattens.
func BenchmarkAblationHardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		old := runAblation(b, costmodel.Default(), core.Config{D: 8})
		modern := runAblation(b, costmodel.Modern(), core.Config{D: 8})
		b.ReportMetric(old.SimSeconds, "beowulf2003-sim-sec")
		b.ReportMetric(modern.SimSeconds, "modern-sim-sec")
		b.ReportMetric(old.MaskableCommFraction()*100, "beowulf-comm-pct")
	}
}

// BenchmarkAblationSampleCap varies the §2.4 online-sample size, which
// trades estimate accuracy (and hence case-3 frequency) against
// nothing but memory — demonstrating why the paper's a = 100p is safe.
func BenchmarkAblationSampleCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tiny := runAblation(b, costmodel.Default(), core.Config{D: 8, SampleCap: 16})
		paper := runAblation(b, costmodel.Default(), core.Config{D: 8})
		b.ReportMetric(tiny.SimSeconds, "cap16-sim-sec")
		b.ReportMetric(paper.SimSeconds, "cap100p-sim-sec")
	}
}

// BenchmarkBaselineWorkPartitioning compares the paper's shared-nothing
// data-partitioning algorithm against the competing work-partitioning
// shared-disk approach its introduction argues against.
func BenchmarkBaselineWorkPartitioning(b *testing.B) {
	spec := ablationSpec()
	raw := gen.New(spec).All()
	for i := 0; i < b.N; i++ {
		_, wm := workpart.BuildCube(raw, workpart.Config{D: 8, P: 16})
		g := gen.New(spec)
		m := cluster.New(16, costmodel.Default())
		for r := 0; r < 16; r++ {
			m.Proc(r).Disk().Put("raw", g.Slice(r, 16))
		}
		sn, err := core.BuildCube(m, "raw", core.Config{D: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(wm.SimSeconds, "workpart-sim-sec")
		b.ReportMetric(sn.SimSeconds, "sharednothing-sim-sec")
	}
}
