package rolap

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queryengine"
	"repro/internal/record"
)

// QueryMetrics reports what one served query cost.
type QueryMetrics struct {
	// SourceView is the materialized view that answered the query, as
	// sorted dimension names (empty slice for the grand-total view).
	SourceView []string
	// RowsScanned counts source rows read and tested across all
	// processors (0 on a cache hit).
	RowsScanned int64
	// BytesMoved is the query's network volume on the simulated
	// machine (0 on a cache hit).
	BytesMoved int64
	// SimSeconds is the query's simulated makespan contribution (0 on
	// a cache hit).
	SimSeconds float64
	// CacheHit reports whether the result came from the server's
	// result cache.
	CacheHit bool
	// IndexUsed reports whether any processor answered from its
	// sorted-prefix index instead of a full slice scan.
	IndexUsed bool
	// Coalesced reports that the query piggybacked on an identical
	// in-flight query instead of executing (single-flight).
	Coalesced bool
	// StaleVersions is how many ingest batches behind the live view
	// the answer was when the overload shed ladder served it from the
	// cache (0 for a fresh answer).
	StaleVersions uint64
}

// ServerOptions configures a query server.
type ServerOptions struct {
	// Workers bounds the number of queries admitted concurrently
	// (default 4). Admitted queries still serialize on the simulated
	// machine; the bound is admission control, not parallel execution.
	Workers int
	// QueueDepth bounds how many queries may wait for a worker slot
	// beyond the admitted ones (default 4×Workers). Arrivals beyond
	// the queue are shed: served stale from the cache when possible,
	// rejected with a typed *OverloadError otherwise.
	QueueDepth int
	// Timeout, when > 0, bounds each query's wall-clock wait+execution
	// via a context deadline.
	Timeout time.Duration
	// CacheSize is the result cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// StaleLimit bounds the first rung of the overload shed ladder: an
	// overloaded query may be answered with a cached result at most
	// StaleLimit ingest batches behind the live view (default 1;
	// negative disables stale serving entirely). Under hard overload
	// (queue full, as opposed to a deadline expiring in the queue) the
	// ladder widens to any cached staleness before rejecting.
	StaleLimit int
	// NoCoalesce disables single-flight coalescing of identical
	// concurrent queries.
	NoCoalesce bool
}

// ServerStats are cumulative counters over a server's lifetime.
type ServerStats struct {
	// Queries counts completed queries, including cache hits.
	Queries int64
	// CacheHits counts queries answered from the result cache,
	// including stale shed-ladder serves.
	CacheHits int64
	// Rejected counts arrivals refused because the queue was full.
	Rejected int64
	// Expired counts queries that hit their deadline before executing.
	Expired int64
	// Coalesced counts queries that piggybacked on an identical
	// in-flight query instead of executing.
	Coalesced int64
	// StaleServes counts overloaded queries answered with a cached
	// result within the StaleLimit bound; StaleWidened counts those
	// answered beyond it on the widened rung (queue-full overload
	// only).
	StaleServes  int64
	StaleWidened int64
	// QueueFullRejects and QueueDeadlineRejects split the typed
	// overload rejections actually returned to callers: arrivals shed
	// because the queue was full versus queries whose deadline expired
	// while waiting in the queue (the latter are also counted in
	// Expired).
	QueueFullRejects     int64
	QueueDeadlineRejects int64
	// SimSeconds is total simulated machine time spent executing.
	SimSeconds float64
	// RowsScanned is total source rows scanned.
	RowsScanned int64
	// Views breaks served queries down by *target* view — the exact
	// dimension set each query needed (comma-joined sorted names),
	// before any superset rewrite. This is the advisor's raw material:
	// a view with heavy Fallbacks and RowsScanned is paying superset
	// scans that materializing it would eliminate.
	Views map[string]ViewServeStats
	// Replans counts queries that were replanned after their source
	// view was retired mid-flight by the advisor.
	Replans int64
}

// ViewServeStats are one target view's cumulative serving counters.
type ViewServeStats struct {
	// Hits counts queries answered from the exact view; Fallbacks
	// counts queries rewritten to a superset scan.
	Hits      int64
	Fallbacks int64
	// CacheHits counts the subset of queries (hit or fallback)
	// answered from the result cache.
	CacheHits int64
	// RowsScanned is total source rows scanned for this target.
	RowsScanned int64
}

// ErrServerOverloaded is the sentinel for overload rejections: every
// *OverloadError matches it under errors.Is, whatever its Reason.
var ErrServerOverloaded = errors.New("rolap: server overloaded, query rejected")

// OverloadReason says which admission limit shed an overloaded query.
type OverloadReason int

const (
	// OverloadQueueFull: the query arrived while Workers queries were
	// executing and QueueDepth more were already waiting.
	OverloadQueueFull OverloadReason = iota
	// OverloadQueueDeadline: the query got a queue slot but its
	// deadline expired before a worker freed up.
	OverloadQueueDeadline
)

func (r OverloadReason) String() string {
	if r == OverloadQueueDeadline {
		return "queue-deadline"
	}
	return "queue-full"
}

// OverloadError is the typed overload rejection: it says which limit
// shed the query, how deep the queue was, and when retrying is worth
// it. It matches ErrServerOverloaded under errors.Is; a
// queue-deadline rejection also matches the context error that
// expired (via Unwrap), so deadline-aware callers keep working.
type OverloadError struct {
	Reason OverloadReason
	// QueueDepth is the number of queries waiting when the query was
	// shed.
	QueueDepth int
	// RetryAfter estimates when a retry could be admitted, from the
	// observed per-query wall time and the queue depth.
	RetryAfter time.Duration
	// Cause is the context error for queue-deadline rejections (nil
	// for queue-full).
	Cause error
}

func (e *OverloadError) Error() string {
	msg := fmt.Sprintf("rolap: server overloaded (%s, queue depth %d, retry after %v)",
		e.Reason, e.QueueDepth, e.RetryAfter)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *OverloadError) Is(target error) bool { return target == ErrServerOverloaded }

func (e *OverloadError) Unwrap() error { return e.Cause }

// Server is a concurrent query front end over a built cube: a bounded
// worker pool admits queries, a canonicalized-key LRU cache answers
// repeats without touching the machine, and everything admitted
// executes scatter–gather on the cube's simulated cluster. Each cache
// entry is stamped with the source view's version counter as returned
// by the execution itself (not as read at plan time, which would race
// with a concurrent ingest commit), and a hit is served only when the
// entry's version still matches the view's current version — results
// cached before an ingest batch cannot be served after the batch
// replaces that view's slices. Server is safe for concurrent use,
// including concurrently with Cube.Ingest.
//
// Under overload the server degrades instead of falling over:
// identical concurrent queries coalesce into one execution
// (single-flight), and queries the admission queue sheds are answered
// from the result cache at bounded staleness when possible — first
// within StaleLimit ingest batches of the live view, then (for
// queue-full overload) at any cached staleness — before the typed
// *OverloadError is returned.
type Server struct {
	cube  *Cube
	sem   chan struct{} // worker slots
	depth int
	// waiting counts callers blocked on sem beyond the admitted ones.
	waiting atomic.Int64
	timeout time.Duration
	cache   *queryengine.Cache

	staleLimit int // -1 disables stale serving
	coalesce   bool
	flMu       sync.Mutex
	flights    map[string]*flight

	vsMu      sync.Mutex
	viewStats map[string]*ViewServeStats

	queries       atomic.Int64
	hits          atomic.Int64
	rejected      atomic.Int64
	expired       atomic.Int64
	coalesced     atomic.Int64
	staleServes   atomic.Int64
	staleWidened  atomic.Int64
	queueFull     atomic.Int64
	queueDeadline atomic.Int64
	replans       atomic.Int64
	simMicros     atomic.Int64 // SimSeconds accumulated in microseconds
	rowsTotal     atomic.Int64
	wallMicros    atomic.Int64 // wall time of completed executions
	wallCount     atomic.Int64
}

// flight is one in-flight execution identical queries coalesce onto:
// the first arrival (the leader) executes, later arrivals block on
// done and share the outcome.
type flight struct {
	done chan struct{}
	c    cached
	qm   QueryMetrics
	err  error
}

// NewServer returns a query server over the cube. Only cluster-backed
// cubes (from Build) can serve; cubes loaded from a snapshot have no
// machine to execute on.
func (c *Cube) NewServer(opts ServerOptions) (*Server, error) {
	if c.engine == nil {
		return nil, fmt.Errorf("rolap: cube has no cluster (loaded from snapshot); use GroupBy directly")
	}
	w := opts.Workers
	if w == 0 {
		w = 4
	}
	if w < 1 {
		return nil, fmt.Errorf("rolap: server needs at least one worker, got %d", w)
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = 4 * w
	}
	if depth < 0 {
		depth = 0
	}
	stale := opts.StaleLimit
	if stale == 0 {
		stale = 1
	}
	if stale < 0 {
		stale = -1
	}
	s := &Server{
		cube:       c,
		sem:        make(chan struct{}, w),
		depth:      depth,
		timeout:    opts.Timeout,
		staleLimit: stale,
		coalesce:   !opts.NoCoalesce,
		flights:    make(map[string]*flight),
		viewStats:  make(map[string]*ViewServeStats),
	}
	size := opts.CacheSize
	if size == 0 {
		size = 256
	}
	if size > 0 {
		s.cache = queryengine.NewCache(size)
	}
	return s, nil
}

// cached pairs a query's merged result table with the metrics of the
// execution that produced it, so cache hits can still report the
// source view. The table is immutable and safely shared across hits.
// ver is the source view's version the execution ran against (from
// queryengine.Metrics.Version); a hit is valid only while the view is
// still at that version.
type cached struct {
	rows *record.Table
	met  queryengine.Metrics
	ver  uint64
}

// GroupBy serves an ad-hoc group-by with equality filters, like
// Cube.GroupBy but with admission control, deadline, caching, and
// per-query cost metrics.
func (s *Server) GroupBy(ctx context.Context, dims []string, filters map[string]uint32) (*View, QueryMetrics, error) {
	for attempt := 0; ; attempt++ {
		q, err := s.cube.planQuery(dims, filters, defaultPercentile)
		if err != nil {
			if s.replanable(err, attempt) {
				continue
			}
			return nil, QueryMetrics{}, err
		}
		c, qm, err := s.serve(ctx, s.cacheKey("g", q), q)
		if err != nil {
			if s.replanable(err, attempt) {
				continue
			}
			return nil, qm, err
		}
		return &View{
			Attributes: append([]string(nil), dims...),
			Estimated:  s.cube.op.Holistic(),
			order:      queryOrder(s.cube, dims),
			rows:       c.rows,
		}, qm, nil
	}
}

// replanable reports whether a serve error means the plan's source
// view was retired (or rebuilt) mid-flight and the query should be
// replanned against the current view set.
func (s *Server) replanable(err error, attempt int) bool {
	if attempt < staleReplanLimit && errors.Is(err, queryengine.ErrStalePlan) {
		s.replans.Add(1)
		return true
	}
	return false
}

// Aggregate serves a point lookup: the aggregate of the single group
// of the named view identified by key (values in dims order).
func (s *Server) Aggregate(ctx context.Context, dims []string, key []uint32) (int64, QueryMetrics, error) {
	if len(dims) != len(key) {
		return 0, QueryMetrics{}, fmt.Errorf("rolap: %d dims, %d key values", len(dims), len(key))
	}
	// lo and hi must be independent copies: sharing one slice would let
	// any downstream mutation of one bound silently corrupt the other.
	lo := append([]uint32(nil), key...)
	hi := append([]uint32(nil), key...)
	return s.RangeAggregate(ctx, dims, lo, hi)
}

// RangeAggregate serves a range aggregate like Cube.RangeAggregate,
// with admission control, deadline, caching, and per-query metrics.
func (s *Server) RangeAggregate(ctx context.Context, dims []string, lo, hi []uint32) (int64, QueryMetrics, error) {
	if len(dims) != len(lo) || len(dims) != len(hi) {
		return 0, QueryMetrics{}, fmt.Errorf("rolap: dims/lo/hi length mismatch")
	}
	for k := range lo {
		if lo[k] > hi[k] {
			return 0, QueryMetrics{}, fmt.Errorf("rolap: empty range on %q", dims[k])
		}
	}
	for attempt := 0; ; attempt++ {
		q, err := s.cube.planRange(dims, lo, hi)
		if err != nil {
			if s.replanable(err, attempt) {
				continue
			}
			return 0, QueryMetrics{}, err
		}
		c, qm, err := s.serve(ctx, s.cacheKey("s", q), q)
		if err != nil {
			if s.replanable(err, attempt) {
				continue
			}
			return 0, qm, err
		}
		if c.rows.Len() == 0 {
			return 0, qm, nil
		}
		return c.rows.Meas(0), qm, nil
	}
}

// cacheKey canonicalizes a planned query into a cache key. The key is
// deliberately version-free: stamping it with the version read at plan
// time raced with concurrent ingest (execution happens after admission,
// so a result computed post-commit could be filed under the pre-commit
// version). Instead each cached entry carries the version its
// execution actually ran against, validated on every hit.
func (s *Server) cacheKey(kind string, q queryengine.Query) string {
	return fmt.Sprintf("%s|%s", kind, q.Key())
}

// serve runs one planned query through the pipeline and, on success,
// folds it into the per-target-view counters the advisor mines.
func (s *Server) serve(ctx context.Context, key string, q queryengine.Query) (cached, QueryMetrics, error) {
	c, qm, err := s.servePipeline(ctx, key, q)
	if err == nil {
		s.noteViewServe(q, qm)
	}
	return c, qm, err
}

// noteViewServe credits one served query to its target view's
// counters: a hit if the need was answered from the exact view, a
// fallback if it was rewritten to a superset scan.
func (s *Server) noteViewServe(q queryengine.Query, qm QueryMetrics) {
	target := strings.Join(s.cube.sourceViewNames(q.Need), ",")
	source := strings.Join(qm.SourceView, ",")
	s.vsMu.Lock()
	defer s.vsMu.Unlock()
	vs := s.viewStats[target]
	if vs == nil {
		vs = &ViewServeStats{}
		s.viewStats[target] = vs
	}
	if target == source {
		vs.Hits++
	} else {
		vs.Fallbacks++
	}
	if qm.CacheHit || qm.Coalesced {
		vs.CacheHits++
	}
	vs.RowsScanned += qm.RowsScanned
}

// servePipeline runs the cache → coalesce → admission → execute
// pipeline for one planned query and returns the cached entry (fresh
// or reused) plus metrics.
func (s *Server) servePipeline(ctx context.Context, key string, q queryengine.Query) (cached, QueryMetrics, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	// Cache first: hits bypass admission entirely — they cost nothing
	// on the simulated machine. A hit is honored only if the entry's
	// stamped version still matches the source view's current version;
	// a stale entry (the view was replaced by an ingest batch since the
	// entry was computed) falls through to execution, which overwrites
	// it under the same key with the fresh version.
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			c := v.(cached)
			if c.ver == s.cube.engine.ViewVersion(q.View) {
				s.queries.Add(1)
				s.hits.Add(1)
				return c, QueryMetrics{
					SourceView: s.cube.sourceViewNames(c.met.Source),
					CacheHit:   true,
					IndexUsed:  c.met.IndexUsed,
				}, nil
			}
		}
	}

	if !s.coalesce {
		return s.execute(ctx, key, q)
	}

	// Single-flight: identical concurrent queries ride one execution.
	// Flights register before admission, so a stampede of one hot query
	// consumes one queue slot, not the whole queue — the flash-crowd
	// failure mode is exactly N identical misses arriving at once.
	s.flMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flMu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return cached{}, QueryMetrics{}, f.err
			}
			s.queries.Add(1)
			s.coalesced.Add(1)
			qm := f.qm
			qm.Coalesced = true
			// The leader paid for the execution; followers report a free
			// ride (like a cache hit) so cost accounting stays single-count.
			qm.RowsScanned, qm.BytesMoved, qm.SimSeconds = 0, 0, 0
			return f.c, qm, nil
		case <-ctx.Done():
			s.expired.Add(1)
			return cached{}, QueryMetrics{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flMu.Unlock()

	c, qm, err := s.execute(ctx, key, q)
	f.c, f.qm, f.err = c, qm, err
	s.flMu.Lock()
	delete(s.flights, key)
	s.flMu.Unlock()
	close(f.done)
	return c, qm, err
}

// execute runs the admission → deadline → machine pipeline, degrading
// through the shed ladder when admission refuses the query.
func (s *Server) execute(ctx context.Context, key string, q queryengine.Query) (cached, QueryMetrics, error) {
	if oe := s.admit(ctx); oe != nil {
		if c, qm, ok := s.serveStale(key, q, oe.Reason); ok {
			return c, qm, nil
		}
		switch oe.Reason {
		case OverloadQueueFull:
			s.rejected.Add(1)
			s.queueFull.Add(1)
		case OverloadQueueDeadline:
			s.expired.Add(1)
			s.queueDeadline.Add(1)
		}
		return cached{}, QueryMetrics{}, oe
	}
	defer func() { <-s.sem }()

	// The deadline covers queueing and is re-checked here; execution on
	// the simulated machine is not preempted once started.
	select {
	case <-ctx.Done():
		s.expired.Add(1)
		return cached{}, QueryMetrics{}, ctx.Err()
	default:
	}

	start := time.Now()
	rows, em, err := s.cube.engine.Execute(q)
	if err != nil {
		return cached{}, QueryMetrics{}, err
	}
	s.wallMicros.Add(time.Since(start).Microseconds())
	s.wallCount.Add(1)
	c := cached{rows: rows, met: em, ver: em.Version}
	if s.cache != nil {
		s.cache.Put(key, c)
	}
	s.queries.Add(1)
	s.simMicros.Add(int64(em.SimSeconds * 1e6))
	s.rowsTotal.Add(em.RowsScanned)
	return c, QueryMetrics{
		SourceView:  s.cube.sourceViewNames(em.Source),
		RowsScanned: em.RowsScanned,
		BytesMoved:  em.BytesMoved,
		SimSeconds:  em.SimSeconds,
		IndexUsed:   em.IndexUsed,
	}, nil
}

// serveStale is the overload shed ladder's cache rung: answer a shed
// query with the cached result for its key, first within the
// StaleLimit bound, then — only under hard queue-full overload — at
// any staleness. Freshness is measured in ingest batches behind the
// live view (version distance). Reports false when no rung applies
// and the query must be rejected.
func (s *Server) serveStale(key string, q queryengine.Query, reason OverloadReason) (cached, QueryMetrics, bool) {
	if s.cache == nil || s.staleLimit < 0 {
		return cached{}, QueryMetrics{}, false
	}
	v, ok := s.cache.Get(key)
	if !ok {
		return cached{}, QueryMetrics{}, false
	}
	c := v.(cached)
	dist := s.cube.engine.ViewVersion(q.View) - c.ver
	if dist <= uint64(s.staleLimit) {
		s.staleServes.Add(1)
	} else if reason == OverloadQueueFull {
		s.staleWidened.Add(1)
	} else {
		return cached{}, QueryMetrics{}, false
	}
	s.queries.Add(1)
	s.hits.Add(1)
	return c, QueryMetrics{
		SourceView:    s.cube.sourceViewNames(c.met.Source),
		CacheHit:      true,
		IndexUsed:     c.met.IndexUsed,
		StaleVersions: dist,
	}, true
}

// admit acquires a worker slot, respecting the queue depth and the
// caller's deadline. A refusal comes back as a typed *OverloadError
// (not yet counted — the caller records it only if the shed ladder
// fails to rescue the query).
func (s *Server) admit(ctx context.Context) *OverloadError {
	select {
	case s.sem <- struct{}{}: // fast path: free worker
		return nil
	default:
	}
	if s.waiting.Add(1) > int64(s.depth) {
		s.waiting.Add(-1)
		return &OverloadError{
			Reason:     OverloadQueueFull,
			QueueDepth: int(s.waiting.Load()),
			RetryAfter: s.retryAfter(),
		}
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &OverloadError{
			Reason:     OverloadQueueDeadline,
			QueueDepth: int(s.waiting.Load()),
			RetryAfter: s.retryAfter(),
			Cause:      ctx.Err(),
		}
	}
}

// retryAfter estimates how long until a shed query could be admitted:
// the observed mean wall time per execution, scaled by how many
// queued queries must drain through the worker pool first.
func (s *Server) retryAfter() time.Duration {
	per := time.Millisecond
	if n := s.wallCount.Load(); n > 0 {
		per = time.Duration(s.wallMicros.Load()/n) * time.Microsecond
		if per < 100*time.Microsecond {
			per = 100 * time.Microsecond
		}
	}
	waves := s.waiting.Load()/int64(cap(s.sem)) + 1
	return time.Duration(waves) * per
}

// Stats returns the server's cumulative counters.
func (s *Server) Stats() ServerStats {
	views := make(map[string]ViewServeStats)
	s.vsMu.Lock()
	for name, vs := range s.viewStats {
		views[name] = *vs
	}
	s.vsMu.Unlock()
	return ServerStats{
		Views:   views,
		Replans: s.replans.Load(),
		Queries:              s.queries.Load(),
		CacheHits:            s.hits.Load(),
		Rejected:             s.rejected.Load(),
		Expired:              s.expired.Load(),
		Coalesced:            s.coalesced.Load(),
		StaleServes:          s.staleServes.Load(),
		StaleWidened:         s.staleWidened.Load(),
		QueueFullRejects:     s.queueFull.Load(),
		QueueDeadlineRejects: s.queueDeadline.Load(),
		SimSeconds:           float64(s.simMicros.Load()) / 1e6,
		RowsScanned:          s.rowsTotal.Load(),
	}
}
