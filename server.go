package rolap

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/queryengine"
	"repro/internal/record"
)

// QueryMetrics reports what one served query cost.
type QueryMetrics struct {
	// SourceView is the materialized view that answered the query, as
	// sorted dimension names (empty slice for the grand-total view).
	SourceView []string
	// RowsScanned counts source rows read and tested across all
	// processors (0 on a cache hit).
	RowsScanned int64
	// BytesMoved is the query's network volume on the simulated
	// machine (0 on a cache hit).
	BytesMoved int64
	// SimSeconds is the query's simulated makespan contribution (0 on
	// a cache hit).
	SimSeconds float64
	// CacheHit reports whether the result came from the server's
	// result cache.
	CacheHit bool
	// IndexUsed reports whether any processor answered from its
	// sorted-prefix index instead of a full slice scan.
	IndexUsed bool
}

// ServerOptions configures a query server.
type ServerOptions struct {
	// Workers bounds the number of queries admitted concurrently
	// (default 4). Admitted queries still serialize on the simulated
	// machine; the bound is admission control, not parallel execution.
	Workers int
	// QueueDepth bounds how many queries may wait for a worker slot
	// beyond the admitted ones (default 4×Workers). Arrivals beyond
	// the queue are rejected with ErrServerOverloaded.
	QueueDepth int
	// Timeout, when > 0, bounds each query's wall-clock wait+execution
	// via a context deadline.
	Timeout time.Duration
	// CacheSize is the result cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
}

// ServerStats are cumulative counters over a server's lifetime.
type ServerStats struct {
	// Queries counts completed queries, including cache hits.
	Queries int64
	// CacheHits counts queries answered from the result cache.
	CacheHits int64
	// Rejected counts arrivals refused by admission control.
	Rejected int64
	// Expired counts queries that hit their deadline before executing.
	Expired int64
	// SimSeconds is total simulated machine time spent executing.
	SimSeconds float64
	// RowsScanned is total source rows scanned.
	RowsScanned int64
}

// ErrServerOverloaded is returned when a query arrives while Workers
// queries are executing and QueueDepth more are already waiting.
var ErrServerOverloaded = errors.New("rolap: server overloaded, query rejected")

// Server is a concurrent query front end over a built cube: a bounded
// worker pool admits queries, a canonicalized-key LRU cache answers
// repeats without touching the machine, and everything admitted
// executes scatter–gather on the cube's simulated cluster. Each cache
// entry is stamped with the source view's version counter as returned
// by the execution itself (not as read at plan time, which would race
// with a concurrent ingest commit), and a hit is served only when the
// entry's version still matches the view's current version — results
// cached before an ingest batch cannot be served after the batch
// replaces that view's slices. Server is safe for concurrent use,
// including concurrently with Cube.Ingest.
type Server struct {
	cube  *Cube
	sem   chan struct{} // worker slots
	depth int
	// waiting counts callers blocked on sem beyond the admitted ones.
	waiting atomic.Int64
	timeout time.Duration
	cache   *queryengine.Cache

	queries   atomic.Int64
	hits      atomic.Int64
	rejected  atomic.Int64
	expired   atomic.Int64
	simMicros atomic.Int64 // SimSeconds accumulated in microseconds
	rowsTotal atomic.Int64
}

// NewServer returns a query server over the cube. Only cluster-backed
// cubes (from Build) can serve; cubes loaded from a snapshot have no
// machine to execute on.
func (c *Cube) NewServer(opts ServerOptions) (*Server, error) {
	if c.engine == nil {
		return nil, fmt.Errorf("rolap: cube has no cluster (loaded from snapshot); use GroupBy directly")
	}
	w := opts.Workers
	if w == 0 {
		w = 4
	}
	if w < 1 {
		return nil, fmt.Errorf("rolap: server needs at least one worker, got %d", w)
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = 4 * w
	}
	if depth < 0 {
		depth = 0
	}
	s := &Server{cube: c, sem: make(chan struct{}, w), depth: depth, timeout: opts.Timeout}
	size := opts.CacheSize
	if size == 0 {
		size = 256
	}
	if size > 0 {
		s.cache = queryengine.NewCache(size)
	}
	return s, nil
}

// cached pairs a query's merged result table with the metrics of the
// execution that produced it, so cache hits can still report the
// source view. The table is immutable and safely shared across hits.
// ver is the source view's version the execution ran against (from
// queryengine.Metrics.Version); a hit is valid only while the view is
// still at that version.
type cached struct {
	rows *record.Table
	met  queryengine.Metrics
	ver  uint64
}

// GroupBy serves an ad-hoc group-by with equality filters, like
// Cube.GroupBy but with admission control, deadline, caching, and
// per-query cost metrics.
func (s *Server) GroupBy(ctx context.Context, dims []string, filters map[string]uint32) (*View, QueryMetrics, error) {
	q, err := s.cube.planQuery(dims, filters)
	if err != nil {
		return nil, QueryMetrics{}, err
	}
	c, qm, err := s.serve(ctx, s.cacheKey("g", q), q)
	if err != nil {
		return nil, qm, err
	}
	return &View{
		Attributes: append([]string(nil), dims...),
		order:      queryOrder(s.cube, dims),
		rows:       c.rows,
	}, qm, nil
}

// Aggregate serves a point lookup: the aggregate of the single group
// of the named view identified by key (values in dims order).
func (s *Server) Aggregate(ctx context.Context, dims []string, key []uint32) (int64, QueryMetrics, error) {
	if len(dims) != len(key) {
		return 0, QueryMetrics{}, fmt.Errorf("rolap: %d dims, %d key values", len(dims), len(key))
	}
	// lo and hi must be independent copies: sharing one slice would let
	// any downstream mutation of one bound silently corrupt the other.
	lo := append([]uint32(nil), key...)
	hi := append([]uint32(nil), key...)
	return s.RangeAggregate(ctx, dims, lo, hi)
}

// RangeAggregate serves a range aggregate like Cube.RangeAggregate,
// with admission control, deadline, caching, and per-query metrics.
func (s *Server) RangeAggregate(ctx context.Context, dims []string, lo, hi []uint32) (int64, QueryMetrics, error) {
	if len(dims) != len(lo) || len(dims) != len(hi) {
		return 0, QueryMetrics{}, fmt.Errorf("rolap: dims/lo/hi length mismatch")
	}
	for k := range lo {
		if lo[k] > hi[k] {
			return 0, QueryMetrics{}, fmt.Errorf("rolap: empty range on %q", dims[k])
		}
	}
	q, err := s.cube.planRange(dims, lo, hi)
	if err != nil {
		return 0, QueryMetrics{}, err
	}
	c, qm, err := s.serve(ctx, s.cacheKey("s", q), q)
	if err != nil {
		return 0, qm, err
	}
	if c.rows.Len() == 0 {
		return 0, qm, nil
	}
	return c.rows.Meas(0), qm, nil
}

// cacheKey canonicalizes a planned query into a cache key. The key is
// deliberately version-free: stamping it with the version read at plan
// time raced with concurrent ingest (execution happens after admission,
// so a result computed post-commit could be filed under the pre-commit
// version). Instead each cached entry carries the version its
// execution actually ran against, validated on every hit.
func (s *Server) cacheKey(kind string, q queryengine.Query) string {
	return fmt.Sprintf("%s|%s", kind, q.Key())
}

// serve runs the admission → cache → execute pipeline for one planned
// query and returns the cached entry (fresh or reused) plus metrics.
func (s *Server) serve(ctx context.Context, key string, q queryengine.Query) (cached, QueryMetrics, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	// Cache first: hits bypass admission entirely — they cost nothing
	// on the simulated machine. A hit is honored only if the entry's
	// stamped version still matches the source view's current version;
	// a stale entry (the view was replaced by an ingest batch since the
	// entry was computed) falls through to execution, which overwrites
	// it under the same key with the fresh version.
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			c := v.(cached)
			if c.ver == s.cube.engine.ViewVersion(q.View) {
				s.queries.Add(1)
				s.hits.Add(1)
				return c, QueryMetrics{
					SourceView: s.cube.sourceViewNames(c.met.Source),
					CacheHit:   true,
					IndexUsed:  c.met.IndexUsed,
				}, nil
			}
		}
	}

	// Admission: try for a worker slot; if all busy, join the bounded
	// queue or reject.
	if err := s.admit(ctx); err != nil {
		return cached{}, QueryMetrics{}, err
	}
	defer func() { <-s.sem }()

	// The deadline covers queueing and is re-checked here; execution on
	// the simulated machine is not preempted once started.
	select {
	case <-ctx.Done():
		s.expired.Add(1)
		return cached{}, QueryMetrics{}, ctx.Err()
	default:
	}

	rows, em, err := s.cube.engine.Execute(q)
	if err != nil {
		return cached{}, QueryMetrics{}, err
	}
	c := cached{rows: rows, met: em, ver: em.Version}
	if s.cache != nil {
		s.cache.Put(key, c)
	}
	s.queries.Add(1)
	s.simMicros.Add(int64(em.SimSeconds * 1e6))
	s.rowsTotal.Add(em.RowsScanned)
	return c, QueryMetrics{
		SourceView:  s.cube.sourceViewNames(em.Source),
		RowsScanned: em.RowsScanned,
		BytesMoved:  em.BytesMoved,
		SimSeconds:  em.SimSeconds,
		IndexUsed:   em.IndexUsed,
	}, nil
}

// admit acquires a worker slot, respecting the queue depth and the
// caller's deadline.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}: // fast path: free worker
		return nil
	default:
	}
	if s.waiting.Add(1) > int64(s.depth) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return ErrServerOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.expired.Add(1)
		return ctx.Err()
	}
}

// Stats returns the server's cumulative counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Queries:     s.queries.Load(),
		CacheHits:   s.hits.Load(),
		Rejected:    s.rejected.Load(),
		Expired:     s.expired.Load(),
		SimSeconds:  float64(s.simMicros.Load()) / 1e6,
		RowsScanned: s.rowsTotal.Load(),
	}
}
