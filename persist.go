package rolap

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/queryengine"
	"repro/internal/record"
	"repro/internal/sketch"
)

// savedCube is the gob-serialized form of a cube: the schema, the
// dictionaries, and every materialized view gathered into flat arrays.
// This is the "pre-computation" deployment the paper motivates: build
// the cube once on the cluster, persist it, and serve OLAP queries
// from the loaded copy.
//
// Version 2 additionally records what a loaded cube needs to keep
// serving and ingesting like the original: the hardware model and
// iceberg threshold, the per-view version counters for cache keys, and
// any facts buffered but not yet applied at save time. Version 1
// snapshots still load (the new fields default to zero); they serve
// queries but reject ingest, since a v1 snapshot cannot prove it was
// not an iceberg cube.
//
// Version 3 stores each view as its per-rank columnar compressed
// slices (internal/colstore) instead of flat row arrays: files shrink
// by the compression ratio, and loading places each slice on its rank
// as an opaque block handle — no decode, no re-cut — so
// cold-load-to-first-query skips the row materialization entirely.
// Version 3 is written only while the columnar store is enabled;
// disabling it (colstore.SetEnabled(false)) writes exact v2 files.
// v1/v2 files still load under v3 code.
type savedCube struct {
	Version    int
	Dimensions []Dimension
	Dicts      [][]string
	Op         int
	Metrics    Metrics
	Views      []savedView

	// v2 fields.
	Hardware     int
	MinSupport   int64
	ViewVersions map[uint32]uint64
	PendingDims  []uint32
	PendingMeas  []int64

	// Holistic sketch section (CountDistinct / Quantile cubes): the
	// store's parameters plus every sealed sketch blob referenced by a
	// saved view measure. The measure words in the saved views are
	// sketch handles and stay valid verbatim because Import reinstalls
	// each blob at the exact slot it was exported from. Sums[i] is
	// Blobs[i]'s FNV-1a checksum, verified at load. Absent (zero) on
	// algebraic cubes and on files written before this section existed.
	SketchKind           int
	SketchFMBitmaps      int
	SketchExactThreshold int
	SketchMaxBuckets     int
	SketchArenaBudget    int
	SketchHandles        []int64
	SketchBlobs          [][]byte
	SketchSums           []uint64
}

type savedView struct {
	View  uint32
	Order []int
	// Dims/Meas hold the flat row form (v1/v2).
	Dims []uint32
	Meas []int64
	// Ranks/Slices hold the v3 columnar form: Slices[i] is the sealed
	// slice of machine rank Ranks[i]. Parallel arrays rather than a
	// rank-indexed slice because gob cannot encode nil pointers inside
	// a slice; only present ranks are stored. Sums[i] is Slices[i]'s
	// payload checksum, verified at load: structural validation alone
	// cannot catch a flipped payload bit.
	Ranks  []int
	Slices []*colstore.Slice
	Sums   []uint64
}

const (
	savedCubeVersion         = 2
	savedCubeVersionColumnar = 3
)

// Save serializes the cube (schema, dictionaries, metrics, every
// materialized view, and any buffered facts) so it can be reloaded
// with LoadCube, queried, and further maintained without rebuilding.
//
// Save is safe to call concurrently with Ingest: the pending-buffer
// copy, the version-counter snapshot, and the gather of every view
// slice all happen inside one maintenance critical section, so the
// serialized cube is always a committed batch boundary — never a torn
// mixture of pre-batch and post-batch views.
func (c *Cube) Save(w io.Writer) error {
	c.ingMu.Lock()
	defer c.ingMu.Unlock()
	return c.saveLocked(w, true)
}

// saveLocked is Save's body, for callers that already hold ingMu (the
// replica tier snapshots the leader from inside its commit hook).
// includePending controls whether buffered-but-unapplied facts are
// serialized; replica bootstrap snapshots exclude them, because those
// facts will arrive at the replica later as part of a shipped batch
// and must not be double counted.
func (c *Cube) saveLocked(w io.Writer, includePending bool) error {
	columnar := colstore.Enabled()
	version := savedCubeVersion
	if columnar {
		version = savedCubeVersionColumnar
	}
	sc := savedCube{
		Version:    version,
		Dimensions: c.in.schema.Dimensions,
		Dicts:      c.in.dicts,
		Op:         int(c.op),
		Metrics:    c.Metrics(),
		Hardware:   int(c.opts.Hardware),
		MinSupport: c.opts.MinSupport,
	}
	// On a holistic cube every view measure is a sketch handle; collect
	// them (deduplicated, in deterministic order) so the sealed blobs
	// travel with the file.
	handleSet := map[int64]bool{}
	collectHandles := func(rows *record.Table) {
		if c.sketch == nil {
			return
		}
		for i := 0; i < rows.Len(); i++ {
			if m := rows.Meas(i); m < 0 {
				handleSet[m] = true
			}
		}
	}
	snapshot := func() error {
		if c.engine != nil {
			sc.ViewVersions = map[uint32]uint64{}
			for v, ver := range c.engine.Versions() {
				sc.ViewVersions[uint32(v)] = ver
			}
		}
		if includePending && c.pending != nil {
			for i := 0; i < c.pending.Len(); i++ {
				sc.PendingDims = append(sc.PendingDims, c.pending.Row(i)...)
				sc.PendingMeas = append(sc.PendingMeas, c.pending.Meas(i))
			}
		}
		for _, v := range c.views {
			sv := savedView{View: uint32(v), Order: c.orders[v]}
			if columnar {
				// v3: gather the sealed per-rank slices as-is — the file
				// carries the compressed block images and their placement.
				if c.machine != nil {
					name := core.ViewFile(v)
					for r := 0; r < c.machine.P(); r++ {
						disk := c.machine.Proc(r).Disk()
						if !disk.Has(name) || disk.Len(name) == 0 {
							continue
						}
						disk.Seal(name)
						s, _ := disk.GetSlice(name)
						sv.Ranks = append(sv.Ranks, r)
						sv.Slices = append(sv.Slices, s)
						sv.Sums = append(sv.Sums, s.Checksum())
					}
				} else if t := c.cache[v]; t != nil && t.Len() > 0 {
					s := colstore.Encode(t)
					sv.Ranks = append(sv.Ranks, 0)
					sv.Slices = append(sv.Slices, s)
					sv.Sums = append(sv.Sums, s.Checksum())
				}
				collectHandles(c.gatherViewRaw(v))
				sc.Views = append(sc.Views, sv)
				continue
			}
			rows := c.gatherViewRaw(v)
			collectHandles(rows)
			n := rows.Len()
			sv.Dims = make([]uint32, 0, n*rows.D)
			sv.Meas = make([]int64, 0, n)
			for i := 0; i < n; i++ {
				sv.Dims = append(sv.Dims, rows.Row(i)...)
				sv.Meas = append(sv.Meas, rows.Meas(i))
			}
			sc.Views = append(sc.Views, sv)
		}
		return nil
	}
	// One maintenance section across every view: holding ingMu alone is
	// not enough, because the per-view gathers would otherwise
	// interleave with an engine-level slice replacement.
	var err error
	if c.engine != nil {
		err = c.engine.Maintain(snapshot)
	} else {
		err = snapshot()
	}
	if err != nil {
		return err
	}
	if c.sketch != nil {
		cfg := c.sketch.Config()
		sc.SketchKind = int(cfg.Kind)
		sc.SketchFMBitmaps = cfg.FMBitmaps
		sc.SketchExactThreshold = cfg.ExactThreshold
		sc.SketchMaxBuckets = cfg.MaxBuckets
		sc.SketchArenaBudget = cfg.ArenaBudget
		handles := make([]int64, 0, len(handleSet))
		for h := range handleSet {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		sc.SketchHandles = handles
		sc.SketchBlobs = c.sketch.Export(handles)
		sc.SketchSums = make([]uint64, len(handles))
		for i, b := range sc.SketchBlobs {
			sc.SketchSums[i] = blobSum(b)
		}
	}
	return gob.NewEncoder(w).Encode(sc)
}

// blobSum is the FNV-1a checksum persisted alongside each sketch blob:
// structural decode alone cannot catch a flipped payload bit.
func blobSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// gatherViewRaw reads view v's slices into one table directly off the
// processors' disks, without entering the engine's maintenance section
// (Maintain is not reentrant; saveLocked already holds it).
func (c *Cube) gatherViewRaw(v lattice.ViewID) *record.Table {
	if c.machine == nil {
		if t := c.cache[v]; t != nil {
			return t
		}
		return record.New(v.Count(), 0)
	}
	rows := record.New(v.Count(), 0)
	for r := 0; r < c.machine.P(); r++ {
		if t, ok := c.machine.Proc(r).Disk().Get(core.ViewFile(v)); ok {
			rows.AppendTable(t)
		}
	}
	return rows
}

// LoadCube deserializes a cube written by Save and rehydrates the full
// query-side state the original had: the views are re-scattered over a
// simulated machine of the saved size (aligned with each partition
// root's slice boundaries, so later ingest batches merge exactly like
// on the original), the distributed query engine and its planning row
// counts are rebuilt, view version counters resume where they left
// off, and buffered facts are restored. The result answers View,
// Aggregate, GroupBy and RangeAggregate exactly like the original and
// (for v2 snapshots of non-iceberg cubes) accepts Ingest.
func LoadCube(r io.Reader) (*Cube, error) {
	var sc savedCube
	if err := gob.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("rolap: loading cube: %w", err)
	}
	if sc.Version < 1 || sc.Version > savedCubeVersionColumnar {
		return nil, fmt.Errorf("rolap: unsupported cube version %d", sc.Version)
	}
	in, err := NewInput(Schema{Dimensions: sc.Dimensions})
	if err != nil {
		return nil, err
	}
	in.dicts = sc.Dicts
	d := len(sc.Dimensions)

	p := sc.Metrics.Processors
	if p < 1 {
		p = 1
	}
	params := costmodel.Default()
	if Hardware(sc.Hardware) == ModernCluster {
		params = costmodel.Modern()
	}
	m := cluster.New(p, params)

	c := &Cube{
		in:      in,
		machine: m,
		orders:  map[lattice.ViewID]lattice.Order{},
		metrics: sc.Metrics,
		op:      record.AggOp(sc.Op),
		opts: Options{
			Processors: p,
			Hardware:   Hardware(sc.Hardware),
			MinSupport: sc.MinSupport,
		},
		loadedV1: sc.Version == 1,
		pending:  record.New(d, 0),
	}
	switch record.AggOp(sc.Op) {
	case record.OpSum:
		c.opts.Aggregate = Sum
	case record.OpMin:
		c.opts.Aggregate = Min
	case record.OpMax:
		c.opts.Aggregate = Max
	case record.OpDistinct:
		c.opts.Aggregate = CountDistinct
	case record.OpQuantile:
		c.opts.Aggregate = Quantile
	}
	if c.op.Holistic() {
		if len(sc.SketchHandles) != len(sc.SketchBlobs) || len(sc.SketchHandles) != len(sc.SketchSums) {
			return nil, fmt.Errorf("rolap: corrupt sketch section: %d handles, %d blobs, %d checksums",
				len(sc.SketchHandles), len(sc.SketchBlobs), len(sc.SketchSums))
		}
		for i, b := range sc.SketchBlobs {
			if blobSum(b) != sc.SketchSums[i] {
				return nil, fmt.Errorf("rolap: sketch blob for handle %d: checksum mismatch", sc.SketchHandles[i])
			}
		}
		st := sketch.NewStore(sketch.Config{
			Kind:           sketch.Kind(sc.SketchKind),
			FMBitmaps:      sc.SketchFMBitmaps,
			ExactThreshold: sc.SketchExactThreshold,
			MaxBuckets:     sc.SketchMaxBuckets,
			ArenaBudget:    sc.SketchArenaBudget,
		})
		if err := st.Import(sc.SketchHandles, sc.SketchBlobs); err != nil {
			return nil, fmt.Errorf("rolap: %w", err)
		}
		c.sketch = st
		c.opts.SketchExactThreshold = sc.SketchExactThreshold
		c.opts.SketchMaxBuckets = sc.SketchMaxBuckets
		c.opts.SketchArenaBudget = sc.SketchArenaBudget
	}

	tables := map[lattice.ViewID]*record.Table{}
	columnar := map[lattice.ViewID]bool{}
	for _, sv := range sc.Views {
		v := lattice.ViewID(sv.View)
		if len(sv.Ranks) > 0 || len(sv.Slices) > 0 {
			// v3 columnar view: validate each block and place it on its
			// saved rank as an opaque compressed handle — no decode.
			if len(sv.Ranks) != len(sv.Slices) {
				return nil, fmt.Errorf("rolap: corrupt saved view %v: %d ranks, %d slices", v, len(sv.Ranks), len(sv.Slices))
			}
			for i, s := range sv.Slices {
				r := sv.Ranks[i]
				if r < 0 || r >= p || s == nil {
					return nil, fmt.Errorf("rolap: corrupt saved view %v: bad rank %d", v, r)
				}
				if err := s.Validate(); err != nil {
					return nil, fmt.Errorf("rolap: saved view %v: %w", v, err)
				}
				if i < len(sv.Sums) && s.Checksum() != sv.Sums[i] {
					return nil, fmt.Errorf("rolap: saved view %v block %d: %w: checksum mismatch", v, i, colstore.ErrCorrupt)
				}
				if s.D() != len(sv.Order) {
					return nil, fmt.Errorf("rolap: corrupt saved view %v: slice has %d columns, order has %d", v, s.D(), len(sv.Order))
				}
				m.Proc(r).Disk().PutSlice(core.ViewFile(v), s)
			}
			c.views = append(c.views, v)
			c.orders[v] = lattice.Order(sv.Order)
			columnar[v] = true
			continue
		}
		dv := len(sv.Order)
		if dv > 0 && len(sv.Dims) != len(sv.Meas)*dv {
			return nil, fmt.Errorf("rolap: corrupt saved view %v", v)
		}
		t := record.New(dv, len(sv.Meas))
		for i := range sv.Meas {
			t.Append(sv.Dims[i*dv:(i+1)*dv], sv.Meas[i])
		}
		c.views = append(c.views, v)
		c.orders[v] = lattice.Order(sv.Order)
		tables[v] = t
	}
	if len(sc.PendingDims) != len(sc.PendingMeas)*d {
		return nil, fmt.Errorf("rolap: corrupt saved pending buffer")
	}
	for i := range sc.PendingMeas {
		c.pending.Append(sc.PendingDims[i*d:(i+1)*d], sc.PendingMeas[i])
	}

	// Scatter each view over the machine. Views whose partition root is
	// materialized are cut at the root's slice boundaries (each rank
	// owns the rows whose key prefix falls in its root key range — the
	// alignment invariant incremental merges rely on); the rest are cut
	// evenly. Either way the concatenation over ranks is the view's
	// global sorted order, so distributed queries, gathers, and later
	// batches behave exactly like on the never-saved original.
	for _, v := range c.views {
		if columnar[v] {
			continue // already placed rank-by-rank above
		}
		t := tables[v]
		cuts := sliceCuts(v, t, c.orders, tables, d, p)
		for r := 0; r < p; r++ {
			if cuts[r+1] > cuts[r] {
				m.Proc(r).Disk().Put(core.ViewFile(v), t.Sub(cuts[r], cuts[r+1]))
			}
		}
	}

	// Planning row counts are derived from the placed storage, not
	// tracked separately — one source of truth for slice lengths.
	rows := map[lattice.ViewID]int64{}
	for _, v := range c.views {
		rows[v] = core.ViewGlobalRows(m, v)
	}

	c.engine = queryengine.New(m, c.orders, rows, c.op)
	if c.sketch != nil {
		c.engine.SetSketch(c.sketch)
	}
	if len(sc.ViewVersions) > 0 {
		vers := make(map[lattice.ViewID]uint64, len(sc.ViewVersions))
		for v, ver := range sc.ViewVersions {
			vers[lattice.ViewID(v)] = ver
		}
		c.engine.RestoreVersions(vers)
	}
	return c, nil
}

// sliceCuts returns the p+1 row offsets that split view v's global
// table into per-rank slices. When v's partition root is materialized
// and v's order is a prefix of the root's, rank r's slice holds the
// rows whose (truncated) key is ≤ the last key of the root's rank-r
// slice; the root itself gets exactly even cuts from the same rule
// (its keys are unique), so prefix views stay boundary-aligned with
// their root. Otherwise cuts are even.
func sliceCuts(v lattice.ViewID, t *record.Table, orders map[lattice.ViewID]lattice.Order, tables map[lattice.ViewID]*record.Table, d, p int) []int {
	n := t.Len()
	cuts := make([]int, p+1)
	cuts[p] = n

	root := lattice.Root(lattice.PartitionOf(v, d), d)
	rootT, ok := tables[root]
	rootOrder, okOrd := orders[root]
	if ok && okOrd && orders[v].IsPrefixOf(rootOrder) && rootT.Len() > 0 {
		rn := rootT.Len()
		cols := len(orders[v])
		for r := 1; r < p; r++ {
			idx := r * rn / p
			if idx == 0 {
				cuts[r] = 0
				continue
			}
			key := rootT.RowCopy(idx - 1)[:cols]
			cuts[r] = record.UpperBound(t, key)
		}
		return cuts
	}
	for r := 1; r < p; r++ {
		cuts[r] = r * n / p
	}
	return cuts
}
