package rolap

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/lattice"
	"repro/internal/record"
)

// savedCube is the gob-serialized form of a cube: the schema, the
// dictionaries, and every materialized view gathered into flat arrays.
// This is the "pre-computation" deployment the paper motivates: build
// the cube once on the cluster, persist it, and serve OLAP queries
// from the loaded copy.
type savedCube struct {
	Version    int
	Dimensions []Dimension
	Dicts      [][]string
	Op         int
	Metrics    Metrics
	Views      []savedView
}

type savedView struct {
	View  uint32
	Order []int
	Dims  []uint32
	Meas  []int64
}

const savedCubeVersion = 1

// Save serializes the cube (schema, dictionaries, metrics, and every
// materialized view) so it can be reloaded with LoadCube and queried
// without rebuilding.
func (c *Cube) Save(w io.Writer) error {
	sc := savedCube{
		Version:    savedCubeVersion,
		Dimensions: c.in.schema.Dimensions,
		Dicts:      c.in.dicts,
		Op:         int(c.op),
		Metrics:    c.metrics,
	}
	for _, v := range c.views {
		vw := c.gather(v)
		sv := savedView{View: uint32(v), Order: c.orders[v]}
		n := vw.rows.Len()
		sv.Dims = make([]uint32, 0, n*vw.rows.D)
		sv.Meas = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			sv.Dims = append(sv.Dims, vw.rows.Row(i)...)
			sv.Meas = append(sv.Meas, vw.rows.Meas(i))
		}
		sc.Views = append(sc.Views, sv)
	}
	return gob.NewEncoder(w).Encode(sc)
}

// LoadCube deserializes a cube written by Save. The result answers
// View, Aggregate, GroupBy and RangeAggregate queries exactly like the
// original; it has no backing cluster (Processors reports the build's
// machine size from the saved metrics).
func LoadCube(r io.Reader) (*Cube, error) {
	var sc savedCube
	if err := gob.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("rolap: loading cube: %w", err)
	}
	if sc.Version != savedCubeVersion {
		return nil, fmt.Errorf("rolap: unsupported cube version %d", sc.Version)
	}
	in, err := NewInput(Schema{Dimensions: sc.Dimensions})
	if err != nil {
		return nil, err
	}
	in.dicts = sc.Dicts
	c := &Cube{
		in:      in,
		orders:  map[lattice.ViewID]lattice.Order{},
		metrics: sc.Metrics,
		op:      record.AggOp(sc.Op),
		cache:   map[lattice.ViewID]*record.Table{},
	}
	for _, sv := range sc.Views {
		v := lattice.ViewID(sv.View)
		d := len(sv.Order)
		if d > 0 && len(sv.Dims) != len(sv.Meas)*d {
			return nil, fmt.Errorf("rolap: corrupt saved view %v", v)
		}
		t := record.New(d, len(sv.Meas))
		for i := range sv.Meas {
			t.Append(sv.Dims[i*d:(i+1)*d], sv.Meas[i])
		}
		c.views = append(c.views, v)
		c.orders[v] = lattice.Order(sv.Order)
		c.cache[v] = t
	}
	return c, nil
}
