package rolap

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestBuildCrashWithoutCheckpointFails(t *testing.T) {
	in, _ := loadRandom(t, 2000, 9)
	plan := &FaultPlan{Crashes: []Crash{{Processor: 1, Dimension: 2, Phase: "build"}}}
	_, err := Build(in, Options{Processors: 4, Faults: plan})
	var failed *FailedBuildError
	if !errors.As(err, &failed) {
		t.Fatalf("want *FailedBuildError, got %v", err)
	}
	if failed.Processor != 1 || failed.Dimension != 2 || failed.Phase != "build" {
		t.Fatalf("error = %+v, want processor 1 dimension 2 phase build", failed)
	}
	for _, want := range []string{"processor 1", "dimension 2", "phase build"} {
		if !strings.Contains(failed.Error(), want) {
			t.Fatalf("error %q missing %q", failed.Error(), want)
		}
	}
}

func TestBuildRecoversFromCrashWithCheckpoint(t *testing.T) {
	in, oracle := loadRandom(t, 2000, 9)
	plan := &FaultPlan{Crashes: []Crash{{Processor: 2, Dimension: 1}}}
	cube, err := Build(in, Options{
		Processors: 4,
		Faults:     plan,
		Checkpoint: Checkpoint{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	met := cube.Metrics()
	if !reflect.DeepEqual(met.FailedProcessors, []int{2}) {
		t.Fatalf("FailedProcessors = %v, want [2]", met.FailedProcessors)
	}
	if met.RecoverySeconds <= 0 || met.CheckpointBytes <= 0 {
		t.Fatalf("recovery not charged: RecoverySeconds=%v CheckpointBytes=%d",
			met.RecoverySeconds, met.CheckpointBytes)
	}
	// The degraded cube still answers queries correctly.
	for _, q := range []struct {
		dims []string
		key  []uint32
	}{
		{[]string{"store", "month"}, []uint32{3, 5}},
		{[]string{"channel"}, []uint32{1}},
		{nil, nil},
	} {
		got, err := cube.Aggregate(q.dims, q.key)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle(q.dims, q.key); got != want {
			t.Fatalf("aggregate %v %v = %d, want %d", q.dims, q.key, got, want)
		}
	}
}

func TestBuildInvalidFaultPlanErrors(t *testing.T) {
	in, _ := loadRandom(t, 200, 1)
	plan := &FaultPlan{Crashes: []Crash{{Processor: 99}}}
	if _, err := Build(in, Options{Processors: 4, Faults: plan}); err == nil {
		t.Fatal("expected error for fault plan naming a processor outside the machine")
	}
}

func TestBuildDeterministicUnderFaults(t *testing.T) {
	plan := &FaultPlan{
		Seed:    5,
		Crashes: []Crash{{Processor: 0, Dimension: 2, Phase: "merge"}},
		// Exchange 0 is the initial raw-share replication to the ring
		// neighbor — a deterministic nonempty payload.
		Drops:       []PayloadFault{{From: 1, To: 2, Exchange: 0}},
		Corruptions: []PayloadFault{{From: 2, To: 3, Exchange: 0, Times: 2}},
	}
	opts := Options{Processors: 4, Faults: plan, Checkpoint: Checkpoint{Enabled: true}}
	in1, _ := loadRandom(t, 1500, 3)
	in2, _ := loadRandom(t, 1500, 3)
	c1, err := Build(in1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(in2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1.Metrics(), c2.Metrics()) {
		t.Fatalf("metrics differ between identical faulty builds:\n%+v\n%+v", c1.Metrics(), c2.Metrics())
	}
	if c1.Metrics().RetriedMessages == 0 {
		t.Fatal("expected retried messages from the injected payload faults")
	}
}
